// Value-based cache: evicts the resident item with the lowest externally
// assigned value (e.g. estimated access probability). This is the cache
// that *realises Model A's assumption* — "prefetched items always eject
// those that have zero probability of being accessed" — whenever items
// with zero value are present; more generally it is the greedy
// min-value-eviction policy that the paper's Model AB discussion (§6)
// implies ("inevitably we can always find an item to evict whose access
// probability is less than h'/n̄(C)").
//
// Implementation: hash map + ordered multiset of (value, item) for an
// O(log n) eviction victim; value updates are O(log n).
// lint:legacy-baseline — pre-arena reference implementation kept
// byte-identical for the differential tests; not a data-plane path.
#pragma once

#include <map>
#include <set>
#include <unordered_map>

#include "cache/cache.hpp"

namespace specpf {

class ValueCache final : public Cache {
 public:
  explicit ValueCache(std::size_t capacity);

  std::optional<EntryTag> lookup(ItemId item) override;
  bool contains(ItemId item) const override;

  /// Inserts with value 0 (unknown); prefer insert_valued().
  void insert(ItemId item, EntryTag tag) override;

  /// Inserts with an explicit value; evicts the current minimum-value
  /// entry if full. If the new item's value is *below* the would-be
  /// victim's, the insertion is refused (cache admission control) — the
  /// greedy-optimal behaviour for probability-valued items.
  /// Returns true when the item is resident afterwards.
  bool insert_valued(ItemId item, EntryTag tag, double value);

  /// Updates a resident item's value. Returns false if absent.
  bool set_value(ItemId item, double value);

  /// Value of a resident item (nullopt if absent).
  std::optional<double> value_of(ItemId item) const;

  /// The value of the current eviction victim (nullopt when empty).
  std::optional<double> min_value() const;

  bool set_tag(ItemId item, EntryTag tag) override;
  bool erase(ItemId item) override;
  std::size_t size() const override { return entries_.size(); }
  std::size_t capacity() const override { return capacity_; }
  void set_eviction_hook(EvictionHook hook) override { hook_ = std::move(hook); }

 private:
  struct Entry {
    EntryTag tag;
    double value;
  };

  void evict_min();

  std::size_t capacity_;
  std::unordered_map<ItemId, Entry> entries_;
  std::set<std::pair<double, ItemId>> by_value_;  // ascending value
  EvictionHook hook_;
};

}  // namespace specpf
