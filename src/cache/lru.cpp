#include "cache/lru.hpp"

#include "util/contract.hpp"

namespace specpf {

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {
  SPECPF_EXPECTS(capacity >= 1);
}

std::optional<EntryTag> LruCache::lookup(ItemId item) {
  ++stats_.lookups;
  auto it = map_.find(item);
  if (it == map_.end()) return std::nullopt;
  ++stats_.hits;
  order_.splice(order_.begin(), order_, it->second);
  return it->second->tag;
}

bool LruCache::contains(ItemId item) const { return map_.count(item) != 0; }

void LruCache::insert(ItemId item, EntryTag tag) {
  ++stats_.insertions;
  auto it = map_.find(item);
  if (it != map_.end()) {
    it->second->tag = tag;
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  if (map_.size() >= capacity_) evict_one();
  order_.push_front(Node{item, tag});
  map_[item] = order_.begin();
}

bool LruCache::set_tag(ItemId item, EntryTag tag) {
  auto it = map_.find(item);
  if (it == map_.end()) return false;
  it->second->tag = tag;
  return true;
}

bool LruCache::erase(ItemId item) {
  auto it = map_.find(item);
  if (it == map_.end()) return false;
  order_.erase(it->second);
  map_.erase(it);
  return true;
}

void LruCache::evict_one() {
  SPECPF_ASSERT(!order_.empty());
  const Node victim = order_.back();
  order_.pop_back();
  map_.erase(victim.item);
  ++stats_.evictions;
  if (hook_) hook_(victim.item, victim.tag);
}

}  // namespace specpf
