// Least-frequently-used cache with O(1) operations (frequency-bucket list,
// after Ketan Shah et al.). Ties within a frequency bucket break LRU.
// lint:legacy-baseline — pre-arena reference implementation kept
// byte-identical for the differential tests; not a data-plane path.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/cache.hpp"

namespace specpf {

class LfuCache final : public Cache {
 public:
  explicit LfuCache(std::size_t capacity);

  std::optional<EntryTag> lookup(ItemId item) override;
  bool contains(ItemId item) const override;
  void insert(ItemId item, EntryTag tag) override;
  bool set_tag(ItemId item, EntryTag tag) override;
  bool erase(ItemId item) override;
  std::size_t size() const override { return map_.size(); }
  std::size_t capacity() const override { return capacity_; }
  void set_eviction_hook(EvictionHook hook) override { hook_ = std::move(hook); }

  /// Access count of a resident item (0 if absent); exposed for tests.
  std::uint64_t frequency(ItemId item) const;

 private:
  struct Node {
    ItemId item;
    EntryTag tag;
  };
  struct Bucket {
    std::uint64_t freq;
    std::list<Node> nodes;  // front = most recently touched at this freq
  };
  using BucketIt = std::list<Bucket>::iterator;
  struct Locator {
    BucketIt bucket;
    std::list<Node>::iterator node;
  };

  void bump(ItemId item, Locator& loc);
  void evict_one();

  std::size_t capacity_;
  std::list<Bucket> buckets_;  // ascending frequency
  std::unordered_map<ItemId, Locator> map_;
  EvictionHook hook_;
};

}  // namespace specpf
