// TaggedCache — composes any eviction policy with the paper's §4 protocol
// for estimating h' (the hit ratio the cache would have without
// prefetching) while prefetching is live.
//
// The wrapper routes accesses through a HitRatioEstimator and maintains the
// tag transitions:
//   prefetch insert  -> untagged
//   demand insert    -> tagged
//   hit on untagged  -> becomes tagged (counted as access, not as nhit)
//   hit on tagged    -> counted as nhit
// It also tracks the realised n̄(F) (prefetch insertions per demand access)
// that Model B's correction factor needs.
#pragma once

#include <memory>

#include "cache/cache.hpp"
#include "core/hit_ratio_estimator.hpp"

namespace specpf {

/// What a TaggedCache access observed.
enum class AccessOutcome {
  kMiss,         ///< not resident
  kHitTagged,    ///< hit on a tagged entry (a "would-have-hit" per §4)
  kHitUntagged,  ///< first touch of a prefetched entry (now tagged)
};

/// Model-B ĥ' from the protocol counters: Model A × n̄(C)/(n̄(C) − n̄(F)),
/// with the realised n̄(F) = prefetch_inserts / accesses, falling back to
/// Model A when n̄(F) ≥ n̄(C) (degenerate: tiny cache). The single
/// arithmetic shared by TaggedCache and the arena cache plane, so the two
/// backends' estimates are bit-identical.
double tagged_model_b_estimate(const core::HitRatioEstimator& estimator,
                               std::uint64_t prefetch_inserts,
                               double resident_items);

class TaggedCache {
 public:
  /// Takes ownership of the underlying eviction policy.
  explicit TaggedCache(std::unique_ptr<Cache> inner);

  /// A user request for `item`: updates estimator counters and tag state.
  AccessOutcome access(ItemId item);

  /// Records a completed demand fetch being admitted to the cache.
  void admit_demand(ItemId item);

  /// Records a completed prefetch being admitted to the cache (untagged).
  void admit_prefetch(ItemId item);

  /// A prefetch that was claimed by a request while still in flight: the
  /// entry enters the cache already tagged (insert-untagged + first access
  /// collapsed into one step) and counts as a used prefetch.
  void admit_prefetch_accessed(ItemId item);

  /// ĥ' under Model A (nhit / naccess).
  double estimate_model_a() const { return estimator_.estimate_model_a(); }

  /// ĥ' under Model B, using the realised n̄(C) (current occupancy) and
  /// realised n̄(F) (prefetch insertions per access so far).
  double estimate_model_b() const;

  /// Realised prefetch insertions per demand access.
  double realized_prefetch_rate() const;

  const Cache& inner() const { return *inner_; }
  Cache& inner() { return *inner_; }
  const core::HitRatioEstimator& estimator() const { return estimator_; }

  /// Prefetched entries that have been touched at least once (untagged→
  /// tagged transitions): the numerator of prefetch usefulness.
  std::uint64_t prefetch_first_uses() const { return prefetch_first_uses_; }
  std::uint64_t prefetch_inserts() const { return prefetch_inserts_; }

 private:
  std::unique_ptr<Cache> inner_;
  core::HitRatioEstimator estimator_;
  std::uint64_t prefetch_inserts_ = 0;
  std::uint64_t prefetch_first_uses_ = 0;
};

}  // namespace specpf
