// Least-recently-used cache: intrusive list + hash map, O(1) per operation.
// lint:legacy-baseline — pre-arena reference implementation kept
// byte-identical for the differential tests; not a data-plane path.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/cache.hpp"

namespace specpf {

class LruCache final : public Cache {
 public:
  explicit LruCache(std::size_t capacity);

  std::optional<EntryTag> lookup(ItemId item) override;
  bool contains(ItemId item) const override;
  void insert(ItemId item, EntryTag tag) override;
  bool set_tag(ItemId item, EntryTag tag) override;
  bool erase(ItemId item) override;
  std::size_t size() const override { return map_.size(); }
  std::size_t capacity() const override { return capacity_; }
  void set_eviction_hook(EvictionHook hook) override { hook_ = std::move(hook); }

 private:
  struct Node {
    ItemId item;
    EntryTag tag;
  };

  void evict_one();

  std::size_t capacity_;
  std::list<Node> order_;  // front = most recent
  std::unordered_map<ItemId, std::list<Node>::iterator> map_;
  EvictionHook hook_;
};

}  // namespace specpf
