#include "cache/cache_plane.hpp"

#include "util/contract.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace specpf {

namespace {

/// §4 protocol state of one user — everything the old TaggedCache carried
/// besides the entries themselves, with the counters packed to 32 bits
/// (16 bytes/user instead of 32; one user cannot plausibly issue 4 billion
/// requests in a run — the legacy backend stores 64 bits). Arithmetic
/// mirrors core::HitRatioEstimator / tagged_model_b_estimate expression
/// for expression; the differential tests pin the backends bit-identical.
struct TaggedUserState {
  std::uint32_t naccess = 0;
  std::uint32_t nhit = 0;
  std::uint32_t prefetch_inserts = 0;
  std::uint32_t prefetch_first_uses = 0;

  double estimate_model_a() const {
    return safe_div(static_cast<double>(nhit), static_cast<double>(naccess),
                    0.0);
  }

  double estimate(core::InteractionModel model, double resident_items) const {
    if (model == core::InteractionModel::kModelA) return estimate_model_a();
    const double nf = safe_div(static_cast<double>(prefetch_inserts),
                               static_cast<double>(naccess), 0.0);
    if (resident_items <= nf) return estimate_model_a();  // tiny cache
    return estimate_model_a() * resident_items / (resident_items - nf);
  }
};

/// The arena backend: policy entries in shared slabs, protocol state in one
/// flat vector. Policy is a compile-time parameter; every method below is
/// fully monomorphic after the make_cache_plane dispatch.
template <typename Policy>
class ArenaCachePlane final : public CachePlane {
 public:
  explicit ArenaCachePlane(const CachePlaneConfig& config)
      : policy_(config.num_users, config.capacity, config.seed),
        users_(config.num_users) {
    SPECPF_EXPECTS(config.num_users >= 1);
  }

  AccessOutcome access(std::uint32_t user, ItemId item) override {
    TaggedUserState& st = users_[user];
    const auto tag = policy_.lookup(user, item);
    if (!tag.has_value()) {
      ++st.naccess;  // on_cache_miss
      return AccessOutcome::kMiss;
    }
    ++st.naccess;  // on_cache_hit: tagged hits count, untagged become tagged
    if (*tag == core::EntryTag::kTagged) {
      ++st.nhit;
      return AccessOutcome::kHitTagged;
    }
    policy_.set_tag(user, item, core::EntryTag::kTagged);
    ++st.prefetch_first_uses;
    return AccessOutcome::kHitUntagged;
  }

  void admit_demand(std::uint32_t user, ItemId item) override {
    insert(user, item, core::HitRatioEstimator::demand_insert_tag());
  }

  void admit_prefetch(std::uint32_t user, ItemId item) override {
    // Re-prefetching a resident item must not downgrade its tag (§4).
    if (policy_.contains(user, item)) return;
    ++users_[user].prefetch_inserts;
    insert(user, item, core::HitRatioEstimator::prefetch_insert_tag());
  }

  void admit_prefetch_accessed(std::uint32_t user, ItemId item) override {
    ++users_[user].prefetch_inserts;
    ++users_[user].prefetch_first_uses;
    insert(user, item, core::HitRatioEstimator::demand_insert_tag());
  }

  bool contains(std::uint32_t user, ItemId item) const override {
    return policy_.contains(user, item);
  }

  std::size_t size(std::uint32_t user) const override {
    return policy_.size(user);
  }

  double estimate(std::uint32_t user,
                  core::InteractionModel model) const override {
    return users_[user].estimate(model,
                                 static_cast<double>(policy_.size(user)));
  }

  CachePlaneTotals totals(core::InteractionModel model) const override {
    CachePlaneTotals out;
    for (std::uint32_t u = 0; u < users_.size(); ++u) {
      out.hprime_sum += estimate(u, model);
      out.prefetch_inserts += users_[u].prefetch_inserts;
      out.prefetch_first_uses += users_[u].prefetch_first_uses;
    }
    return out;
  }

  std::uint64_t prefetch_inserts(std::uint32_t user) const override {
    return users_[user].prefetch_inserts;
  }
  std::uint64_t prefetch_first_uses(std::uint32_t user) const override {
    return users_[user].prefetch_first_uses;
  }

  void set_eviction_observer(EvictionObserver observer) override {
    observer_ = std::move(observer);
  }

  void audit(AuditReport& report) const override {
    const AuditScope scope(report, "ArenaCachePlane");
    for (std::uint32_t u = 0; u < users_.size(); ++u) {
      const TaggedUserState& st = users_[u];
      report.check(st.nhit <= st.naccess,
                   "user " + std::to_string(u) + ": nhit > naccess");
      report.check(st.prefetch_first_uses <= st.prefetch_inserts,
                   "user " + std::to_string(u) +
                       ": prefetch first uses > prefetch inserts");
    }
    policy_.audit(report);
  }

 private:
  void insert(std::uint32_t user, ItemId item, core::EntryTag tag) {
    policy_.insert(user, item, tag,
                   [this, user](ItemId victim, core::EntryTag victim_tag) {
                     if (observer_) observer_(user, victim, victim_tag);
                   });
  }

  Policy policy_;
  std::vector<TaggedUserState> users_;
  EvictionObserver observer_;
};

/// The legacy backend: one heap TaggedCache (wrapping a virtual Cache) per
/// user, constructed exactly as the pre-arena StackRuntime did — the
/// differential baseline.
class LegacyCachePlane final : public CachePlane {
 public:
  LegacyCachePlane(CacheKind kind, const CachePlaneConfig& config) {
    SPECPF_EXPECTS(config.num_users >= 1);
    Rng root(config.seed);
    caches_.reserve(config.num_users);
    for (std::size_t u = 0; u < config.num_users; ++u) {
      auto inner = make_cache(kind, config.capacity,
                              root.substream(100 + u).next_u64());
      inner->set_eviction_hook(
          [this, user = static_cast<std::uint32_t>(u)](ItemId item,
                                                       core::EntryTag tag) {
            if (observer_) observer_(user, item, tag);
          });
      caches_.push_back(std::make_unique<TaggedCache>(std::move(inner)));
    }
  }

  AccessOutcome access(std::uint32_t user, ItemId item) override {
    return caches_[user]->access(item);
  }
  void admit_demand(std::uint32_t user, ItemId item) override {
    caches_[user]->admit_demand(item);
  }
  void admit_prefetch(std::uint32_t user, ItemId item) override {
    caches_[user]->admit_prefetch(item);
  }
  void admit_prefetch_accessed(std::uint32_t user, ItemId item) override {
    caches_[user]->admit_prefetch_accessed(item);
  }
  bool contains(std::uint32_t user, ItemId item) const override {
    return caches_[user]->inner().contains(item);
  }
  std::size_t size(std::uint32_t user) const override {
    return caches_[user]->inner().size();
  }

  double estimate(std::uint32_t user,
                  core::InteractionModel model) const override {
    return model == core::InteractionModel::kModelA
               ? caches_[user]->estimate_model_a()
               : caches_[user]->estimate_model_b();
  }

  CachePlaneTotals totals(core::InteractionModel model) const override {
    CachePlaneTotals out;
    for (std::uint32_t u = 0; u < caches_.size(); ++u) {
      out.hprime_sum += estimate(u, model);
      out.prefetch_inserts += caches_[u]->prefetch_inserts();
      out.prefetch_first_uses += caches_[u]->prefetch_first_uses();
    }
    return out;
  }

  std::uint64_t prefetch_inserts(std::uint32_t user) const override {
    return caches_[user]->prefetch_inserts();
  }
  std::uint64_t prefetch_first_uses(std::uint32_t user) const override {
    return caches_[user]->prefetch_first_uses();
  }

  void set_eviction_observer(EvictionObserver observer) override {
    observer_ = std::move(observer);
  }

  void audit(AuditReport& report) const override {
    // The legacy entries live in std::list/std::unordered_map nodes that
    // ASan already watches; only the §4 counters are worth re-deriving.
    const AuditScope scope(report, "LegacyCachePlane");
    for (std::uint32_t u = 0; u < caches_.size(); ++u) {
      report.check(
          caches_[u]->prefetch_first_uses() <= caches_[u]->prefetch_inserts(),
          "user " + std::to_string(u) +
              ": prefetch first uses > prefetch inserts");
    }
  }

 private:
  std::vector<std::unique_ptr<TaggedCache>> caches_;
  EvictionObserver observer_;
};

}  // namespace

std::unique_ptr<CachePlane> make_cache_plane(CacheKind kind,
                                             const CachePlaneConfig& config,
                                             bool use_legacy) {
  if (use_legacy) {
    return std::make_unique<LegacyCachePlane>(kind, config);
  }
  // The once-per-run dispatch: policy × residency mode. Small capacities
  // take the per-user-block arenas (inline residency scan, no hash index
  // bytes at all); larger ones the shared-slab arenas over the fleet-wide
  // FlatIndexMap. Both are bit-identical to the legacy caches.
  const bool small = config.capacity <= arena::kInlineResidencyCapacity;
  switch (kind) {
    case CacheKind::kLru:
      return small
                 ? std::unique_ptr<CachePlane>(
                       std::make_unique<ArenaCachePlane<arena::SmallLruArena>>(
                           config))
                 : std::make_unique<ArenaCachePlane<arena::LruArena>>(config);
    case CacheKind::kLfu:
      return small
                 ? std::unique_ptr<CachePlane>(
                       std::make_unique<ArenaCachePlane<arena::SmallLfuArena>>(
                           config))
                 : std::make_unique<ArenaCachePlane<arena::LfuArena>>(config);
    case CacheKind::kFifo:
      return small
                 ? std::unique_ptr<CachePlane>(
                       std::make_unique<ArenaCachePlane<arena::SmallFifoArena>>(
                           config))
                 : std::make_unique<ArenaCachePlane<arena::FifoArena>>(config);
    case CacheKind::kClock:
      return small
                 ? std::unique_ptr<CachePlane>(
                       std::make_unique<
                           ArenaCachePlane<arena::SmallClockArena>>(config))
                 : std::make_unique<ArenaCachePlane<arena::ClockArena>>(config);
    case CacheKind::kRandom:
      return small
                 ? std::unique_ptr<CachePlane>(
                       std::make_unique<
                           ArenaCachePlane<arena::SmallRandomArena>>(config))
                 : std::make_unique<ArenaCachePlane<arena::RandomArena>>(
                       config);
  }
  SPECPF_ASSERT(false && "unknown cache kind");
  return nullptr;
}

}  // namespace specpf
