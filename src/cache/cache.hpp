// Client cache interface. Capacity is counted in items, matching the
// paper's n̄(C) (the analysis never needs byte capacities; byte-capacity
// variants can wrap these policies).
//
// Every entry carries an EntryTag so the §4 hit-ratio estimation protocol
// (tagged/untagged) composes with any eviction policy.
#pragma once

#include <cstdint>
#include <optional>

#include "core/hit_ratio_estimator.hpp"
#include "des/inline_function.hpp"

namespace specpf {

using ItemId = std::uint64_t;
using core::EntryTag;

/// Statistics every cache keeps.
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  double hit_ratio() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

class Cache {
 public:
  /// Invoked with (item, tag) whenever an entry is evicted to make room.
  /// Inline-storage (no heap per hook): captures up to 24 bytes — a couple
  /// of pointers — which covers every hook in the tree; larger captures are
  /// a compile error, not a silent allocation.
  using EvictionHook = InlineFunction<void(ItemId, EntryTag), 24>;

  virtual ~Cache() = default;

  /// Looks `item` up. A hit updates policy metadata (recency/frequency/...)
  /// and returns the entry's tag; a miss returns nullopt. Counted in stats.
  virtual std::optional<EntryTag> lookup(ItemId item) = 0;

  /// True iff the item is resident; does NOT touch policy metadata or stats.
  virtual bool contains(ItemId item) const = 0;

  /// Inserts `item` with `tag`, evicting per policy if full. Re-inserting a
  /// resident item updates its tag (and metadata per policy).
  virtual void insert(ItemId item, EntryTag tag) = 0;

  /// Rewrites the tag of a resident item. Returns false if absent.
  virtual bool set_tag(ItemId item, EntryTag tag) = 0;

  /// Removes an item. Returns false if absent. Not counted as an eviction.
  virtual bool erase(ItemId item) = 0;

  /// Current number of resident items.
  virtual std::size_t size() const = 0;

  /// Maximum number of resident items.
  virtual std::size_t capacity() const = 0;

  virtual void set_eviction_hook(EvictionHook hook) = 0;

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

 protected:
  CacheStats stats_;
};

}  // namespace specpf
