#include "cache/tagged_cache.hpp"

#include "util/contract.hpp"
#include "util/math.hpp"

namespace specpf {

TaggedCache::TaggedCache(std::unique_ptr<Cache> inner)
    : inner_(std::move(inner)) {
  SPECPF_EXPECTS(inner_ != nullptr);
}

AccessOutcome TaggedCache::access(ItemId item) {
  const auto tag = inner_->lookup(item);
  if (!tag.has_value()) {
    estimator_.on_cache_miss();
    return AccessOutcome::kMiss;
  }
  const EntryTag new_tag = estimator_.on_cache_hit(*tag);
  if (new_tag != *tag) {
    inner_->set_tag(item, new_tag);
    ++prefetch_first_uses_;
    return AccessOutcome::kHitUntagged;
  }
  return AccessOutcome::kHitTagged;
}

void TaggedCache::admit_demand(ItemId item) {
  inner_->insert(item, core::HitRatioEstimator::demand_insert_tag());
}

void TaggedCache::admit_prefetch(ItemId item) {
  // Re-prefetching a resident item must not downgrade its tag: a tagged
  // entry's future hits would have happened without prefetching, and that
  // attribution is exactly what §4's protocol measures.
  if (inner_->contains(item)) return;
  ++prefetch_inserts_;
  inner_->insert(item, core::HitRatioEstimator::prefetch_insert_tag());
}

void TaggedCache::admit_prefetch_accessed(ItemId item) {
  ++prefetch_inserts_;
  ++prefetch_first_uses_;
  inner_->insert(item, core::HitRatioEstimator::demand_insert_tag());
}

double TaggedCache::realized_prefetch_rate() const {
  return safe_div(static_cast<double>(prefetch_inserts_),
                  static_cast<double>(estimator_.accesses()), 0.0);
}

double tagged_model_b_estimate(const core::HitRatioEstimator& estimator,
                               std::uint64_t prefetch_inserts,
                               double resident_items) {
  const double nf = safe_div(static_cast<double>(prefetch_inserts),
                             static_cast<double>(estimator.accesses()), 0.0);
  if (resident_items <= nf) {  // degenerate: tiny cache
    return estimator.estimate_model_a();
  }
  return estimator.estimate_model_b(resident_items, nf);
}

double TaggedCache::estimate_model_b() const {
  return tagged_model_b_estimate(estimator_, prefetch_inserts_,
                                 static_cast<double>(inner_->size()));
}

}  // namespace specpf
