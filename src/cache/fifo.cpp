#include "cache/fifo.hpp"

#include "util/contract.hpp"

namespace specpf {

FifoCache::FifoCache(std::size_t capacity) : capacity_(capacity) {
  SPECPF_EXPECTS(capacity >= 1);
}

std::optional<EntryTag> FifoCache::lookup(ItemId item) {
  ++stats_.lookups;
  auto it = map_.find(item);
  if (it == map_.end()) return std::nullopt;
  ++stats_.hits;
  return it->second->tag;
}

bool FifoCache::contains(ItemId item) const { return map_.count(item) != 0; }

void FifoCache::insert(ItemId item, EntryTag tag) {
  ++stats_.insertions;
  auto it = map_.find(item);
  if (it != map_.end()) {
    it->second->tag = tag;  // refresh tag only; FIFO position unchanged
    return;
  }
  if (map_.size() >= capacity_) evict_one();
  order_.push_back(Node{item, tag});
  map_[item] = std::prev(order_.end());
}

bool FifoCache::set_tag(ItemId item, EntryTag tag) {
  auto it = map_.find(item);
  if (it == map_.end()) return false;
  it->second->tag = tag;
  return true;
}

bool FifoCache::erase(ItemId item) {
  auto it = map_.find(item);
  if (it == map_.end()) return false;
  order_.erase(it->second);
  map_.erase(it);
  return true;
}

void FifoCache::evict_one() {
  SPECPF_ASSERT(!order_.empty());
  const Node victim = order_.front();
  order_.pop_front();
  map_.erase(victim.item);
  ++stats_.evictions;
  if (hook_) hook_(victim.item, victim.tag);
}

}  // namespace specpf
