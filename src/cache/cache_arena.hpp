// CacheArena — one slab for a million user caches.
//
// The legacy cache layer gives every user a heap-allocated TaggedCache plus
// a virtual Cache built on std::list/std::unordered_map nodes: at the
// million-user scale of the ROADMAP sweeps, that per-user node soup
// dominates RSS and constructor time. The arena replaces all of it with
// shared flat storage for the whole fleet:
//
//   * one contiguous slab of packed entry nodes (u32 index links, 32-bit
//     item, tag and policy metadata folded into the node, free-list reuse),
//   * intrusive doubly-linked LRU/FIFO chains and flat LFU frequency
//     buckets threaded through that slab,
//   * fixed per-user frame/slot blocks for CLOCK and random replacement,
//   * residency resolved by ONE flat hash index keyed (user << 32) | item
//     for the entire fleet (FlatIndexMap: structure-of-arrays robin-hood,
//     13 bytes per slot),
//   * per-user state collapsed to a small value-type view (head/tail
//     index + size — tens of bytes instead of a constellation of heap
//     nodes).
//
// Each policy arena reproduces its legacy counterpart's eviction decisions
// bit-for-bit (same victims, same tags, same RNG draws for the random
// policy); tests/cache_plane_test.cpp and the stack differential matrix pin
// that equivalence. The arena deliberately has no erase(): the §4 tagged
// protocol never removes entries, and dropping erase keeps CLOCK's
// occupied frames a dense prefix (so the legacy "first unoccupied frame"
// scan collapses to a counter).
//
// Eviction policy is a compile-time template parameter of the plane built
// on top of these arenas (cache/cache_plane.hpp), dispatched once per run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "util/audit.hpp"
#include "util/contract.hpp"
#include "util/flat_hash.hpp"
#include "util/rng.hpp"

namespace specpf::arena {

using core::EntryTag;

/// Index of a node/frame/slot inside an arena slab.
using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kNull = 0xFFFFFFFFu;

/// Fleet-wide residency key. Same packing contract as the stack's
/// in-flight map: items must fit in 32 bits. Debug-only check: this runs
/// on every residency probe, and the audit walkers re-verify the packing
/// in Release.
inline std::uint64_t residency_key(std::uint32_t user, ItemId item) {
  SPECPF_DCHECK((item >> 32) == 0);
  return (static_cast<std::uint64_t>(user) << 32) | item;
}

/// Capacities up to this use the small-cache arenas: per-user fixed blocks
/// with inline residency (a linear scan of at most 16 packed entries — one
/// to three cache lines), no hash index at all. Larger capacities use the
/// slab + FlatIndexMap arenas. Both variants of every policy are
/// bit-identical to the legacy caches; the dispatch happens once per run in
/// make_cache_plane next to the policy dispatch.
inline constexpr std::size_t kInlineResidencyCapacity = 16;

// ---------------------------------------------------------------------------
// Intrusive-list arenas (LRU, FIFO)
// ---------------------------------------------------------------------------

/// Shared skeleton of the list-ordered policies: a slab of 16-byte nodes
/// with intrusive prev/next links, a free list, per-user chain views, and
/// the fleet residency map.
class ListArenaBase {
 public:
  ListArenaBase(std::size_t num_users, std::size_t capacity,
                std::uint64_t /*seed*/)
      : capacity_(static_cast<std::uint32_t>(capacity)), users_(num_users) {
    SPECPF_EXPECTS(capacity >= 1);
    map_.reserve(std::min<std::size_t>(num_users * capacity, 1u << 20));
  }

  bool contains(std::uint32_t user, ItemId item) const {
    return map_.contains(residency_key(user, item));
  }

  bool set_tag(std::uint32_t user, ItemId item, EntryTag tag) {
    const NodeIndex* idx = map_.find(residency_key(user, item));
    if (idx == nullptr) return false;
    nodes_[*idx].tag = tag;
    return true;
  }

  std::uint32_t size(std::uint32_t user) const { return users_[user].size; }

  /// Deep-invariant walk (util/audit.hpp): per-user chain integrity
  /// (links, acyclicity, size agreement), chain <-> residency-index
  /// agreement, free-list acyclicity, and slab conservation (every node is
  /// free or chained exactly once).
  void audit(AuditReport& report) const {
    AuditScope scope(report, "ListArena");
    // 0 = unseen, 1 = on the free list, 2 = chained under some user.
    std::vector<std::uint8_t> state(nodes_.size(), 0);
    std::size_t free_count = 0;
    for (NodeIndex n = free_; n != kNull; n = nodes_[n].next) {
      if (!report.check(n < nodes_.size(),
                        "free list points past the slab (node " +
                            std::to_string(n) + ")")) {
        break;
      }
      if (!report.check(state[n] == 0, "free list revisits node " +
                                           std::to_string(n) + " (cycle)")) {
        break;
      }
      state[n] = 1;
      ++free_count;
    }
    std::uint64_t chained = 0;
    for (std::uint32_t user = 0; user < users_.size(); ++user) {
      const UserCacheView& u = users_[user];
      report.check(u.size <= capacity_, "user " + std::to_string(user) +
                                            " exceeds capacity");
      NodeIndex prev = kNull;
      NodeIndex n = u.head;
      std::uint32_t steps = 0;
      while (n != kNull) {
        if (!report.check(steps < u.size,
                          "user " + std::to_string(user) +
                              " chain is longer than its recorded size (" +
                              std::to_string(u.size) + ")")) {
          break;
        }
        if (!report.check(n < nodes_.size(), "user " + std::to_string(user) +
                                                 " chain points past the "
                                                 "slab")) {
          break;
        }
        if (!report.check(state[n] == 0,
                          "node " + std::to_string(n) +
                              " appears in two chains or on the free list")) {
          break;
        }
        state[n] = 2;
        const Node& node = nodes_[n];
        report.check(node.prev == prev,
                     "node " + std::to_string(n) + " has a broken prev link");
        const NodeIndex* idx = map_.find(residency_key(user, node.item));
        report.check(idx != nullptr && *idx == n,
                     "user " + std::to_string(user) + " item " +
                         std::to_string(node.item) +
                         " is chained but missing or desynced in the "
                         "residency index");
        prev = n;
        n = node.next;
        ++steps;
      }
      report.check(steps == u.size,
                   "user " + std::to_string(user) + " chain walk found " +
                       std::to_string(steps) + " nodes, size() says " +
                       std::to_string(u.size));
      report.check(u.tail == prev, "user " + std::to_string(user) +
                                       " tail disagrees with the chain walk");
      chained += steps;
    }
    report.check(chained == map_.size(),
                 "residency index holds " + std::to_string(map_.size()) +
                     " entries but " + std::to_string(chained) +
                     " nodes are chained");
    report.check(free_count + chained == nodes_.size(),
                 "slab conservation: " + std::to_string(free_count) +
                     " free + " + std::to_string(chained) + " chained != " +
                     std::to_string(nodes_.size()) + " slab nodes");
    map_.audit(report);
  }

 protected:
  friend struct specpf::AuditPeer;  // corruption-injection tests only

  struct Node {
    std::uint32_t item = 0;
    NodeIndex prev = kNull;
    NodeIndex next = kNull;
    EntryTag tag = EntryTag::kUntagged;
  };

  /// Per-user chain view: the whole per-user cache state.
  struct UserCacheView {
    NodeIndex head = kNull;  // LRU: most recent; FIFO: oldest
    NodeIndex tail = kNull;  // LRU: victim end; FIFO: newest
    std::uint32_t size = 0;
  };

  NodeIndex alloc_node(ItemId item, EntryTag tag) {
    NodeIndex n;
    if (free_ != kNull) {
      n = free_;
      free_ = nodes_[n].next;
    } else {
      SPECPF_DCHECK(nodes_.size() < kNull);
      n = static_cast<NodeIndex>(nodes_.size());
      nodes_.emplace_back();
    }
    nodes_[n] = Node{static_cast<std::uint32_t>(item), kNull, kNull, tag};
    return n;
  }

  void free_node(NodeIndex n) {
    nodes_[n].next = free_;
    free_ = n;
  }

  void unlink(UserCacheView& u, NodeIndex n) {
    Node& node = nodes_[n];
    if (node.prev != kNull) nodes_[node.prev].next = node.next;
    if (node.next != kNull) nodes_[node.next].prev = node.prev;
    if (u.head == n) u.head = node.next;
    if (u.tail == n) u.tail = node.prev;
    node.prev = node.next = kNull;
  }

  void push_front(UserCacheView& u, NodeIndex n) {
    nodes_[n].prev = kNull;
    nodes_[n].next = u.head;
    if (u.head != kNull) nodes_[u.head].prev = n;
    u.head = n;
    if (u.tail == kNull) u.tail = n;
  }

  void push_back(UserCacheView& u, NodeIndex n) {
    nodes_[n].next = kNull;
    nodes_[n].prev = u.tail;
    if (u.tail != kNull) nodes_[u.tail].next = n;
    u.tail = n;
    if (u.head == kNull) u.head = n;
  }

  std::uint32_t capacity_;
  FlatIndexMap map_;
  std::vector<Node> nodes_;
  NodeIndex free_ = kNull;
  std::vector<UserCacheView> users_;
};

/// LRU over the shared slab: lookups and re-inserts splice the node to the
/// chain head; the victim is the chain tail.
class LruArena : public ListArenaBase {
 public:
  using ListArenaBase::ListArenaBase;

  std::optional<EntryTag> lookup(std::uint32_t user, ItemId item) {
    const NodeIndex* idx = map_.find(residency_key(user, item));
    if (idx == nullptr) return std::nullopt;
    move_to_front(users_[user], *idx);
    return nodes_[*idx].tag;
  }

  template <typename OnEvict>
  void insert(std::uint32_t user, ItemId item, EntryTag tag,
              OnEvict&& on_evict) {
    UserCacheView& u = users_[user];
    if (const NodeIndex* idx = map_.find(residency_key(user, item))) {
      nodes_[*idx].tag = tag;
      move_to_front(u, *idx);
      return;
    }
    if (u.size >= capacity_) {
      const NodeIndex victim = u.tail;
      const std::uint32_t vitem = nodes_[victim].item;
      const EntryTag vtag = nodes_[victim].tag;
      unlink(u, victim);
      free_node(victim);
      map_.erase(residency_key(user, vitem));
      --u.size;
      on_evict(static_cast<ItemId>(vitem), vtag);
    }
    const NodeIndex n = alloc_node(item, tag);
    push_front(u, n);
    map_[residency_key(user, item)] = n;
    ++u.size;
  }

 private:
  void move_to_front(UserCacheView& u, NodeIndex n) {
    if (u.head == n) return;
    unlink(u, n);
    push_front(u, n);
  }
};

/// FIFO over the shared slab: eviction order fixed at insertion (chain head
/// is the oldest entry); lookups and tag refreshes never move a node.
class FifoArena : public ListArenaBase {
 public:
  using ListArenaBase::ListArenaBase;

  std::optional<EntryTag> lookup(std::uint32_t user, ItemId item) {
    const NodeIndex* idx = map_.find(residency_key(user, item));
    if (idx == nullptr) return std::nullopt;
    return nodes_[*idx].tag;
  }

  template <typename OnEvict>
  void insert(std::uint32_t user, ItemId item, EntryTag tag,
              OnEvict&& on_evict) {
    UserCacheView& u = users_[user];
    if (const NodeIndex* idx = map_.find(residency_key(user, item))) {
      nodes_[*idx].tag = tag;  // refresh tag only; FIFO position unchanged
      return;
    }
    if (u.size >= capacity_) {
      const NodeIndex victim = u.head;
      const std::uint32_t vitem = nodes_[victim].item;
      const EntryTag vtag = nodes_[victim].tag;
      unlink(u, victim);
      free_node(victim);
      map_.erase(residency_key(user, vitem));
      --u.size;
      on_evict(static_cast<ItemId>(vitem), vtag);
    }
    const NodeIndex n = alloc_node(item, tag);
    push_back(u, n);
    map_[residency_key(user, item)] = n;
    ++u.size;
  }
};

// ---------------------------------------------------------------------------
// LFU arena: flat frequency buckets threaded through two slabs
// ---------------------------------------------------------------------------

/// O(1) LFU (frequency-bucket list, after Ketan Shah et al.) with both the
/// entry nodes and the bucket nodes drawn from shared slabs. Ties within a
/// frequency bucket break LRU, exactly like the legacy LfuCache.
class LfuArena {
 public:
  LfuArena(std::size_t num_users, std::size_t capacity, std::uint64_t /*seed*/)
      : capacity_(static_cast<std::uint32_t>(capacity)), users_(num_users) {
    SPECPF_EXPECTS(capacity >= 1);
    map_.reserve(std::min<std::size_t>(num_users * capacity, 1u << 20));
  }

  std::optional<EntryTag> lookup(std::uint32_t user, ItemId item) {
    const NodeIndex* idx = map_.find(residency_key(user, item));
    if (idx == nullptr) return std::nullopt;
    const EntryTag tag = nodes_[*idx].tag;
    bump(user, *idx);
    return tag;
  }

  bool contains(std::uint32_t user, ItemId item) const {
    return map_.contains(residency_key(user, item));
  }

  bool set_tag(std::uint32_t user, ItemId item, EntryTag tag) {
    const NodeIndex* idx = map_.find(residency_key(user, item));
    if (idx == nullptr) return false;
    nodes_[*idx].tag = tag;
    return true;
  }

  std::uint32_t size(std::uint32_t user) const { return users_[user].size; }

  /// Access count of a resident item (0 if absent); exposed for tests.
  /// Counts saturate only past 2^32 touches of one item by one user —
  /// unreachable in any sweep we run (the legacy cache stores 64 bits).
  std::uint32_t frequency(std::uint32_t user, ItemId item) const {
    const NodeIndex* idx = map_.find(residency_key(user, item));
    return idx == nullptr ? 0 : buckets_[nodes_[*idx].bucket].freq;
  }

  template <typename OnEvict>
  void insert(std::uint32_t user, ItemId item, EntryTag tag,
              OnEvict&& on_evict) {
    if (const NodeIndex* idx = map_.find(residency_key(user, item))) {
      nodes_[*idx].tag = tag;
      bump(user, *idx);
      return;
    }
    UserLfuView& u = users_[user];
    if (u.size >= capacity_) evict_one(user, on_evict);
    // New items start in the frequency-1 bucket.
    NodeIndex b = u.buckets;
    if (b == kNull || buckets_[b].freq != 1) {
      b = alloc_bucket(1);
      buckets_[b].next = u.buckets;
      if (u.buckets != kNull) buckets_[u.buckets].prev = b;
      u.buckets = b;
    }
    const NodeIndex n = alloc_node(item, tag, b);
    push_node_front(b, n);
    map_[residency_key(user, item)] = n;
    ++u.size;
  }

  /// Deep-invariant walker: free-list acyclicity on both slabs, per-user
  /// bucket chains strictly ascending in frequency, node <-> bucket
  /// back-pointers, chain <-> residency-index agreement, and two-slab
  /// conservation (free + chained == allocated on each slab).
  void audit(AuditReport& report) const {
    const AuditScope scope(report, "LfuArena");
    // 0 = unseen, 1 = on a free list, 2 = reachable from a user chain.
    std::vector<std::uint8_t> node_state(nodes_.size(), 0);
    std::vector<std::uint8_t> bucket_state(buckets_.size(), 0);
    std::size_t free_node_count = 0;
    for (NodeIndex n = free_nodes_; n != kNull; n = nodes_[n].next) {
      if (!report.check(n < nodes_.size(), "free node out of range")) break;
      if (!report.check(node_state[n] == 0,
                        "node free list revisits slot " + std::to_string(n) +
                            " (cycle or double free)")) {
        break;
      }
      node_state[n] = 1;
      ++free_node_count;
    }
    std::size_t free_bucket_count = 0;
    for (NodeIndex b = free_buckets_; b != kNull; b = buckets_[b].next) {
      if (!report.check(b < buckets_.size(), "free bucket out of range")) {
        break;
      }
      if (!report.check(bucket_state[b] == 0,
                        "bucket free list revisits slot " + std::to_string(b) +
                            " (cycle or double free)")) {
        break;
      }
      bucket_state[b] = 1;
      ++free_bucket_count;
    }
    std::size_t chained_nodes = 0;
    std::size_t live_buckets = 0;
    for (std::uint32_t user = 0; user < users_.size(); ++user) {
      const UserLfuView& u = users_[user];
      const std::string who = "user " + std::to_string(user);
      std::uint32_t user_nodes = 0;
      std::uint32_t prev_freq = 0;
      NodeIndex prev_b = kNull;
      for (NodeIndex b = u.buckets; b != kNull; b = buckets_[b].next) {
        if (!report.check(b < buckets_.size(),
                          who + ": bucket index out of range")) {
          break;
        }
        if (!report.check(bucket_state[b] == 0,
                          who + ": bucket " + std::to_string(b) +
                              " freed or reached twice (cycle)")) {
          break;
        }
        bucket_state[b] = 2;
        ++live_buckets;
        const Bucket& bucket = buckets_[b];
        report.check(bucket.prev == prev_b,
                     who + ": bucket back-link broken at " + std::to_string(b));
        report.check(bucket.freq > prev_freq,
                     who + ": bucket frequencies not strictly ascending at " +
                         std::to_string(b));
        NodeIndex prev_n = kNull;
        for (NodeIndex n = bucket.head; n != kNull; n = nodes_[n].next) {
          if (!report.check(n < nodes_.size(),
                            who + ": node index out of range")) {
            break;
          }
          if (!report.check(node_state[n] == 0,
                            who + ": node " + std::to_string(n) +
                                " freed or reached twice (cycle)")) {
            break;
          }
          node_state[n] = 2;
          const LfuNode& node = nodes_[n];
          report.check(node.prev == prev_n,
                       who + ": node back-link broken at " + std::to_string(n));
          report.check(node.bucket == b,
                       who + ": node " + std::to_string(n) +
                           " bucket back-pointer desynced");
          const NodeIndex* r = map_.find(residency_key(user, node.item));
          if (report.check(r != nullptr, who + ": chained item " +
                                             std::to_string(node.item) +
                                             " missing from residency index")) {
            report.check(*r == n, who + ": residency index points at a "
                                        "different node for item " +
                                      std::to_string(node.item));
          }
          prev_n = n;
          ++user_nodes;
        }
        report.check(bucket.head != kNull,
                     who + ": empty bucket " + std::to_string(b) +
                         " left in chain");
        report.check(bucket.tail == prev_n,
                     who + ": bucket tail desynced at " + std::to_string(b));
        prev_freq = buckets_[b].freq;
        prev_b = b;
      }
      report.check(user_nodes == u.size,
                   who + ": chain length != recorded size");
      chained_nodes += user_nodes;
    }
    report.check(chained_nodes == map_.size(),
                 "residency index size != total chained nodes");
    report.check(free_node_count + chained_nodes == nodes_.size(),
                 "node slab conservation broken (free + chained != allocated)");
    report.check(free_bucket_count + live_buckets == buckets_.size(),
                 "bucket slab conservation broken (free + live != allocated)");
    map_.audit(report);
  }

 private:
  friend struct specpf::AuditPeer;  // corruption-injection tests only

  struct LfuNode {
    std::uint32_t item = 0;
    NodeIndex prev = kNull;  // within the bucket; front = most recent
    NodeIndex next = kNull;
    NodeIndex bucket = kNull;
    EntryTag tag = EntryTag::kUntagged;
  };
  struct Bucket {
    std::uint32_t freq = 0;
    NodeIndex prev = kNull;  // bucket chain, ascending frequency
    NodeIndex next = kNull;
    NodeIndex head = kNull;  // front = most recently touched at this freq
    NodeIndex tail = kNull;
  };
  /// Per-user view: lowest-frequency bucket plus the resident count.
  struct UserLfuView {
    NodeIndex buckets = kNull;
    std::uint32_t size = 0;
  };

  NodeIndex alloc_node(ItemId item, EntryTag tag, NodeIndex bucket) {
    NodeIndex n;
    if (free_nodes_ != kNull) {
      n = free_nodes_;
      free_nodes_ = nodes_[n].next;
    } else {
      SPECPF_DCHECK(nodes_.size() < kNull);
      n = static_cast<NodeIndex>(nodes_.size());
      nodes_.emplace_back();
    }
    nodes_[n] =
        LfuNode{static_cast<std::uint32_t>(item), kNull, kNull, bucket, tag};
    return n;
  }

  void free_lfu_node(NodeIndex n) {
    nodes_[n].next = free_nodes_;
    free_nodes_ = n;
  }

  NodeIndex alloc_bucket(std::uint32_t freq) {
    NodeIndex b;
    if (free_buckets_ != kNull) {
      b = free_buckets_;
      free_buckets_ = buckets_[b].next;
    } else {
      SPECPF_DCHECK(buckets_.size() < kNull);
      b = static_cast<NodeIndex>(buckets_.size());
      buckets_.emplace_back();
    }
    buckets_[b] = Bucket{freq, kNull, kNull, kNull, kNull};
    return b;
  }

  void free_bucket(NodeIndex b) {
    buckets_[b].next = free_buckets_;
    free_buckets_ = b;
  }

  void push_node_front(NodeIndex b, NodeIndex n) {
    Bucket& bucket = buckets_[b];
    nodes_[n].prev = kNull;
    nodes_[n].next = bucket.head;
    if (bucket.head != kNull) nodes_[bucket.head].prev = n;
    bucket.head = n;
    if (bucket.tail == kNull) bucket.tail = n;
    nodes_[n].bucket = b;
  }

  void unlink_node(NodeIndex b, NodeIndex n) {
    Bucket& bucket = buckets_[b];
    LfuNode& node = nodes_[n];
    if (node.prev != kNull) nodes_[node.prev].next = node.next;
    if (node.next != kNull) nodes_[node.next].prev = node.prev;
    if (bucket.head == n) bucket.head = node.next;
    if (bucket.tail == n) bucket.tail = node.prev;
    node.prev = node.next = kNull;
  }

  void remove_bucket(UserLfuView& u, NodeIndex b) {
    Bucket& bucket = buckets_[b];
    if (bucket.prev != kNull) buckets_[bucket.prev].next = bucket.next;
    if (bucket.next != kNull) buckets_[bucket.next].prev = bucket.prev;
    if (u.buckets == b) u.buckets = bucket.next;
    free_bucket(b);
  }

  void bump(std::uint32_t user, NodeIndex n) {
    const NodeIndex b = nodes_[n].bucket;
    const std::uint32_t next_freq = buckets_[b].freq + 1;
    NodeIndex next = buckets_[b].next;
    if (next == kNull || buckets_[next].freq != next_freq) {
      // Splice a fresh bucket between b and its successor.
      const NodeIndex nb = alloc_bucket(next_freq);
      const NodeIndex after = buckets_[b].next;  // re-read: alloc may move
      buckets_[nb].prev = b;
      buckets_[nb].next = after;
      buckets_[b].next = nb;
      if (after != kNull) buckets_[after].prev = nb;
      next = nb;
    }
    unlink_node(b, n);
    if (buckets_[b].head == kNull) remove_bucket(users_[user], b);
    push_node_front(next, n);
  }

  template <typename OnEvict>
  void evict_one(std::uint32_t user, OnEvict&& on_evict) {
    UserLfuView& u = users_[user];
    SPECPF_DCHECK(u.buckets != kNull);
    const NodeIndex lowest = u.buckets;
    const NodeIndex victim = buckets_[lowest].tail;  // LRU within the bucket
    SPECPF_DCHECK(victim != kNull);
    const std::uint32_t vitem = nodes_[victim].item;
    const EntryTag vtag = nodes_[victim].tag;
    unlink_node(lowest, victim);
    if (buckets_[lowest].head == kNull) remove_bucket(u, lowest);
    free_lfu_node(victim);
    map_.erase(residency_key(user, vitem));
    --u.size;
    on_evict(static_cast<ItemId>(vitem), vtag);
  }

  std::uint32_t capacity_;
  FlatIndexMap map_;
  std::vector<LfuNode> nodes_;
  std::vector<Bucket> buckets_;
  NodeIndex free_nodes_ = kNull;
  NodeIndex free_buckets_ = kNull;
  std::vector<UserLfuView> users_;
};

// ---------------------------------------------------------------------------
// CLOCK arena: fixed per-user frame blocks in one flat array
// ---------------------------------------------------------------------------

/// CLOCK (second chance) with each user owning a fixed block of `capacity`
/// 8-byte frames at frames_[user * capacity]. Without erase, occupied
/// frames are a dense prefix, so the legacy "first unoccupied frame" scan
/// reduces to the live counter; once full, the hand sweep is identical to
/// the legacy ClockCache's. Residency: inline block scan below
/// kInlineResidencyCapacity, the fleet FlatIndexMap above.
template <bool kInlineResidency>
class ClockArenaT {
 public:
  ClockArenaT(std::size_t num_users, std::size_t capacity,
              std::uint64_t /*seed*/)
      : capacity_(static_cast<std::uint32_t>(capacity)), users_(num_users) {
    SPECPF_EXPECTS(capacity >= 1);
    SPECPF_EXPECTS(num_users * capacity < kNull);
    frames_.resize(num_users * capacity);
    if constexpr (!kInlineResidency) {
      map_.reserve(std::min<std::size_t>(num_users * capacity, 1u << 20));
    }
  }

  std::optional<EntryTag> lookup(std::uint32_t user, ItemId item) {
    const NodeIndex idx = find_frame(user, item);
    if (idx == kNull) return std::nullopt;
    frames_[idx].referenced = true;
    return frames_[idx].tag;
  }

  bool contains(std::uint32_t user, ItemId item) const {
    return find_frame(user, item) != kNull;
  }

  bool set_tag(std::uint32_t user, ItemId item, EntryTag tag) {
    const NodeIndex idx = find_frame(user, item);
    if (idx == kNull) return false;
    frames_[idx].tag = tag;
    return true;
  }

  std::uint32_t size(std::uint32_t user) const { return users_[user].live; }

  template <typename OnEvict>
  void insert(std::uint32_t user, ItemId item, EntryTag tag,
              OnEvict&& on_evict) {
    if (const NodeIndex idx = find_frame(user, item); idx != kNull) {
      frames_[idx].tag = tag;
      frames_[idx].referenced = true;
      return;
    }
    UserClockView& u = users_[user];
    const NodeIndex base = static_cast<NodeIndex>(
        static_cast<std::size_t>(user) * capacity_);
    std::uint32_t frame;
    if (u.live < capacity_) {
      frame = u.live;  // dense prefix: the first unoccupied frame
    } else {
      // Sweep, clearing reference bits, until an unreferenced frame —
      // terminates within two passes.
      for (;;) {
        Frame& f = frames_[base + u.hand];
        const std::uint32_t cur = u.hand;
        u.hand = (u.hand + 1) % capacity_;
        if (!f.referenced) {
          frame = cur;
          break;
        }
        f.referenced = false;
      }
    }
    Frame& f = frames_[base + frame];
    if (f.occupied) {
      if constexpr (!kInlineResidency) {
        map_.erase(residency_key(user, f.item));
      }
      --u.live;
      on_evict(static_cast<ItemId>(f.item), f.tag);
    }
    f = Frame{static_cast<std::uint32_t>(item), tag, /*referenced=*/true,
              /*occupied=*/true};
    if constexpr (!kInlineResidency) {
      map_[residency_key(user, item)] = base + frame;
    }
    ++u.live;
  }

  /// Deep-invariant walker: occupied frames form a dense prefix of each
  /// user's block, hand stays in range, and (in indexed mode) every
  /// occupied frame agrees with the fleet residency index.
  void audit(AuditReport& report) const {
    const AuditScope scope(report, "ClockArena");
    std::uint64_t live_total = 0;
    for (std::uint32_t user = 0; user < users_.size(); ++user) {
      const UserClockView& u = users_[user];
      const std::string who = "user " + std::to_string(user);
      report.check(u.live <= capacity_, who + " exceeds capacity");
      report.check(u.hand < capacity_, who + " hand out of range");
      const std::size_t base = static_cast<std::size_t>(user) * capacity_;
      const std::uint32_t live = std::min(u.live, capacity_);
      for (std::uint32_t i = 0; i < capacity_; ++i) {
        const Frame& f = frames_[base + i];
        report.check(f.occupied == (i < live),
                     who + ": frame " + std::to_string(i) +
                         " breaks the dense occupied prefix");
        if constexpr (!kInlineResidency) {
          if (f.occupied) {
            const NodeIndex* idx = map_.find(residency_key(user, f.item));
            report.check(idx != nullptr && *idx == base + i,
                         who + ": occupied frame " + std::to_string(i) +
                             " missing or desynced in the residency index");
          }
        }
      }
      live_total += live;
    }
    if constexpr (!kInlineResidency) {
      report.check(live_total == map_.size(),
                   "residency index size != total occupied frames");
      map_.audit(report);
    }
  }

 private:
  friend struct specpf::AuditPeer;  // corruption-injection tests only

  struct Frame {
    std::uint32_t item = 0;
    EntryTag tag = EntryTag::kUntagged;
    bool referenced = false;
    bool occupied = false;
  };
  struct UserClockView {
    std::uint32_t hand = 0;
    std::uint32_t live = 0;
  };

  NodeIndex find_frame(std::uint32_t user, ItemId item) const {
    if constexpr (kInlineResidency) {
      const auto base = static_cast<NodeIndex>(
          static_cast<std::size_t>(user) * capacity_);
      const std::uint32_t live = users_[user].live;
      const auto item32 = static_cast<std::uint32_t>(item);
      SPECPF_DCHECK((item >> 32) == 0);
      for (std::uint32_t i = 0; i < live; ++i) {
        if (frames_[base + i].item == item32) return base + i;
      }
      return kNull;
    } else {
      const NodeIndex* idx = map_.find(residency_key(user, item));
      return idx == nullptr ? kNull : *idx;
    }
  }

  std::uint32_t capacity_;
  FlatIndexMap map_;  // empty in inline-residency mode
  std::vector<Frame> frames_;
  std::vector<UserClockView> users_;
};

using ClockArena = ClockArenaT<false>;
using SmallClockArena = ClockArenaT<true>;

// ---------------------------------------------------------------------------
// Random arena: fixed per-user slot blocks, per-user RNG streams
// ---------------------------------------------------------------------------

/// Random replacement with each user owning a dense block of `capacity`
/// 8-byte slots (swap-with-last removal) and its own Xoshiro stream seeded
/// exactly like the legacy plane (root.substream(100 + user)), so victim
/// draws are bit-identical to a fleet of legacy RandomCaches. Residency:
/// inline block scan below kInlineResidencyCapacity, else the fleet map.
template <bool kInlineResidency>
class RandomArenaT {
 public:
  RandomArenaT(std::size_t num_users, std::size_t capacity, std::uint64_t seed)
      : capacity_(static_cast<std::uint32_t>(capacity)), users_(num_users) {
    SPECPF_EXPECTS(capacity >= 1);
    SPECPF_EXPECTS(num_users * capacity < kNull);
    slots_.resize(num_users * capacity);
    if constexpr (!kInlineResidency) {
      map_.reserve(std::min<std::size_t>(num_users * capacity, 1u << 20));
    }
    const Rng root(seed);
    rngs_.reserve(num_users);
    for (std::size_t u = 0; u < num_users; ++u) {
      rngs_.emplace_back(root.substream(100 + u).next_u64());
    }
  }

  std::optional<EntryTag> lookup(std::uint32_t user, ItemId item) {
    const NodeIndex idx = find_slot(user, item);
    if (idx == kNull) return std::nullopt;
    return slots_[idx].tag;
  }

  bool contains(std::uint32_t user, ItemId item) const {
    return find_slot(user, item) != kNull;
  }

  bool set_tag(std::uint32_t user, ItemId item, EntryTag tag) {
    const NodeIndex idx = find_slot(user, item);
    if (idx == kNull) return false;
    slots_[idx].tag = tag;
    return true;
  }

  std::uint32_t size(std::uint32_t user) const { return users_[user].size; }

  template <typename OnEvict>
  void insert(std::uint32_t user, ItemId item, EntryTag tag,
              OnEvict&& on_evict) {
    if (const NodeIndex idx = find_slot(user, item); idx != kNull) {
      slots_[idx].tag = tag;
      return;
    }
    UserRandomView& u = users_[user];
    const NodeIndex base = static_cast<NodeIndex>(
        static_cast<std::size_t>(user) * capacity_);
    if (u.size >= capacity_) {
      const std::uint32_t pos =
          static_cast<std::uint32_t>(rngs_[user].next_below(u.size));
      const Slot victim = slots_[base + pos];
      if constexpr (!kInlineResidency) {
        map_.erase(residency_key(user, victim.item));
      }
      if (pos != u.size - 1) {  // swap-with-last removal
        slots_[base + pos] = slots_[base + u.size - 1];
        if constexpr (!kInlineResidency) {
          map_[residency_key(user, slots_[base + pos].item)] = base + pos;
        }
      }
      --u.size;
      on_evict(static_cast<ItemId>(victim.item), victim.tag);
    }
    slots_[base + u.size] = Slot{static_cast<std::uint32_t>(item), tag};
    if constexpr (!kInlineResidency) {
      map_[residency_key(user, item)] = base + u.size;
    }
    ++u.size;
  }

  /// Deep-invariant walker: per-user sizes in range, one RNG stream per
  /// user, and (in indexed mode) every live slot agrees with the fleet
  /// residency index.
  void audit(AuditReport& report) const {
    const AuditScope scope(report, "RandomArena");
    report.check(rngs_.size() == users_.size(),
                 "RNG stream count != user count");
    std::uint64_t live_total = 0;
    for (std::uint32_t user = 0; user < users_.size(); ++user) {
      const UserRandomView& u = users_[user];
      const std::string who = "user " + std::to_string(user);
      report.check(u.size <= capacity_, who + " exceeds capacity");
      const std::size_t base = static_cast<std::size_t>(user) * capacity_;
      const std::uint32_t live = std::min(u.size, capacity_);
      if constexpr (!kInlineResidency) {
        for (std::uint32_t i = 0; i < live; ++i) {
          const NodeIndex* idx =
              map_.find(residency_key(user, slots_[base + i].item));
          report.check(idx != nullptr && *idx == base + i,
                       who + ": live slot " + std::to_string(i) +
                           " missing or desynced in the residency index");
        }
      }
      live_total += live;
    }
    if constexpr (!kInlineResidency) {
      report.check(live_total == map_.size(),
                   "residency index size != total live slots");
      map_.audit(report);
    }
  }

 private:
  friend struct specpf::AuditPeer;  // corruption-injection tests only

  struct Slot {
    std::uint32_t item = 0;
    EntryTag tag = EntryTag::kUntagged;
  };
  struct UserRandomView {
    std::uint32_t size = 0;
  };

  NodeIndex find_slot(std::uint32_t user, ItemId item) const {
    if constexpr (kInlineResidency) {
      const auto base = static_cast<NodeIndex>(
          static_cast<std::size_t>(user) * capacity_);
      const std::uint32_t live = users_[user].size;
      const auto item32 = static_cast<std::uint32_t>(item);
      SPECPF_DCHECK((item >> 32) == 0);
      for (std::uint32_t i = 0; i < live; ++i) {
        if (slots_[base + i].item == item32) return base + i;
      }
      return kNull;
    } else {
      const NodeIndex* idx = map_.find(residency_key(user, item));
      return idx == nullptr ? kNull : *idx;
    }
  }

  std::uint32_t capacity_;
  FlatIndexMap map_;  // empty in inline-residency mode
  std::vector<Slot> slots_;
  std::vector<Rng> rngs_;
  std::vector<UserRandomView> users_;
};

using RandomArena = RandomArenaT<false>;
using SmallRandomArena = RandomArenaT<true>;

// ---------------------------------------------------------------------------
// Small-cache arenas: per-user fixed blocks, inline residency, no hash index
// ---------------------------------------------------------------------------

/// LRU/FIFO for capacities ≤ kInlineResidencyCapacity: each user owns a
/// fixed block of `capacity` packed 12-byte nodes with 16-bit local links.
/// Residency is a scan of the block's occupied prefix (the §4 protocol
/// never erases, and eviction reuses the victim's slot in place, so
/// occupied slots always form a prefix) — at most three cache lines, and
/// zero index bytes per entry.
class SmallListArenaBase {
 public:
  SmallListArenaBase(std::size_t num_users, std::size_t capacity,
                     std::uint64_t /*seed*/)
      : capacity_(static_cast<std::uint16_t>(capacity)), users_(num_users) {
    SPECPF_EXPECTS(capacity >= 1);
    SPECPF_EXPECTS(capacity <= kInlineResidencyCapacity);
    nodes_.resize(num_users * capacity);
  }

  bool contains(std::uint32_t user, ItemId item) const {
    return find_slot(user, item) != kNull16;
  }

  bool set_tag(std::uint32_t user, ItemId item, EntryTag tag) {
    const std::uint16_t slot = find_slot(user, item);
    if (slot == kNull16) return false;
    node(user, slot).tag = tag;
    return true;
  }

  std::uint32_t size(std::uint32_t user) const { return users_[user].size; }

  /// Deep-invariant walker: each user's chain covers exactly the occupied
  /// prefix [0, size) of its block, with intact back-links and no cycles.
  void audit(AuditReport& report) const {
    const AuditScope scope(report, "SmallListArena");
    for (std::uint32_t user = 0; user < users_.size(); ++user) {
      const UserCacheView& u = users_[user];
      const std::string who = "user " + std::to_string(user);
      report.check(u.size <= capacity_, who + " exceeds capacity");
      std::uint32_t seen = 0;  // bitmap: capacity_ <= 16 slots
      std::uint16_t prev = kNull16;
      std::uint16_t slot = u.head;
      std::uint16_t steps = 0;
      while (slot != kNull16) {
        if (!report.check(slot < u.size,
                          who + ": chain slot " + std::to_string(slot) +
                              " outside the occupied prefix")) {
          break;
        }
        if (!report.check((seen & (1u << slot)) == 0,
                          who + ": chain revisits slot " +
                              std::to_string(slot) + " (cycle)")) {
          break;
        }
        seen |= 1u << slot;
        const Node& n = node(user, slot);
        report.check(n.prev == prev,
                     who + ": broken prev link at slot " +
                         std::to_string(slot));
        prev = slot;
        slot = n.next;
        ++steps;
      }
      report.check(steps == u.size,
                   who + ": chain walk found " + std::to_string(steps) +
                       " nodes, size() says " + std::to_string(u.size));
      report.check(u.tail == prev, who + ": tail disagrees with chain walk");
    }
  }

 protected:
  friend struct specpf::AuditPeer;  // corruption-injection tests only

  static constexpr std::uint16_t kNull16 = 0xFFFF;

  struct Node {  // 12 bytes
    std::uint32_t item = 0;
    std::uint16_t prev = kNull16;  // local slot index within the block
    std::uint16_t next = kNull16;
    EntryTag tag = EntryTag::kUntagged;
  };

  /// Per-user chain view over the block.
  struct UserCacheView {
    std::uint16_t head = kNull16;
    std::uint16_t tail = kNull16;
    std::uint16_t size = 0;
  };

  std::size_t base(std::uint32_t user) const {
    return static_cast<std::size_t>(user) * capacity_;
  }
  Node& node(std::uint32_t user, std::uint16_t slot) {
    return nodes_[base(user) + slot];
  }
  const Node& node(std::uint32_t user, std::uint16_t slot) const {
    return nodes_[base(user) + slot];
  }

  std::uint16_t find_slot(std::uint32_t user, ItemId item) const {
    SPECPF_DCHECK((item >> 32) == 0);
    const auto item32 = static_cast<std::uint32_t>(item);
    const Node* block = &nodes_[base(user)];
    const std::uint16_t live = users_[user].size;
    for (std::uint16_t i = 0; i < live; ++i) {
      if (block[i].item == item32) return i;
    }
    return kNull16;
  }

  void unlink(std::uint32_t user, UserCacheView& u, std::uint16_t slot) {
    Node& n = node(user, slot);
    if (n.prev != kNull16) node(user, n.prev).next = n.next;
    if (n.next != kNull16) node(user, n.next).prev = n.prev;
    if (u.head == slot) u.head = n.next;
    if (u.tail == slot) u.tail = n.prev;
    n.prev = n.next = kNull16;
  }

  void push_front(std::uint32_t user, UserCacheView& u, std::uint16_t slot) {
    Node& n = node(user, slot);
    n.prev = kNull16;
    n.next = u.head;
    if (u.head != kNull16) node(user, u.head).prev = slot;
    u.head = slot;
    if (u.tail == kNull16) u.tail = slot;
  }

  void push_back(std::uint32_t user, UserCacheView& u, std::uint16_t slot) {
    Node& n = node(user, slot);
    n.next = kNull16;
    n.prev = u.tail;
    if (u.tail != kNull16) node(user, u.tail).next = slot;
    u.tail = slot;
    if (u.head == kNull16) u.head = slot;
  }

  std::uint16_t capacity_;
  std::vector<Node> nodes_;
  std::vector<UserCacheView> users_;
};

class SmallLruArena : public SmallListArenaBase {
 public:
  using SmallListArenaBase::SmallListArenaBase;

  std::optional<EntryTag> lookup(std::uint32_t user, ItemId item) {
    const std::uint16_t slot = find_slot(user, item);
    if (slot == kNull16) return std::nullopt;
    move_to_front(user, slot);
    return node(user, slot).tag;
  }

  template <typename OnEvict>
  void insert(std::uint32_t user, ItemId item, EntryTag tag,
              OnEvict&& on_evict) {
    UserCacheView& u = users_[user];
    if (const std::uint16_t slot = find_slot(user, item); slot != kNull16) {
      node(user, slot).tag = tag;
      move_to_front(user, slot);
      return;
    }
    std::uint16_t slot;
    if (u.size >= capacity_) {
      slot = u.tail;  // victim's slot is reused in place
      const Node victim = node(user, slot);
      unlink(user, u, slot);
      --u.size;
      on_evict(static_cast<ItemId>(victim.item), victim.tag);
    } else {
      slot = u.size;  // occupied prefix grows
    }
    node(user, slot) = Node{static_cast<std::uint32_t>(item), kNull16,
                            kNull16, tag};
    push_front(user, u, slot);
    ++u.size;
  }

 private:
  void move_to_front(std::uint32_t user, std::uint16_t slot) {
    UserCacheView& u = users_[user];
    if (u.head == slot) return;
    unlink(user, u, slot);
    push_front(user, u, slot);
  }
};

class SmallFifoArena : public SmallListArenaBase {
 public:
  using SmallListArenaBase::SmallListArenaBase;

  std::optional<EntryTag> lookup(std::uint32_t user, ItemId item) {
    const std::uint16_t slot = find_slot(user, item);
    if (slot == kNull16) return std::nullopt;
    return node(user, slot).tag;
  }

  template <typename OnEvict>
  void insert(std::uint32_t user, ItemId item, EntryTag tag,
              OnEvict&& on_evict) {
    UserCacheView& u = users_[user];
    if (const std::uint16_t slot = find_slot(user, item); slot != kNull16) {
      node(user, slot).tag = tag;  // tag refresh only; position unchanged
      return;
    }
    std::uint16_t slot;
    if (u.size >= capacity_) {
      slot = u.head;  // oldest entry; its slot is reused in place
      const Node victim = node(user, slot);
      unlink(user, u, slot);
      --u.size;
      on_evict(static_cast<ItemId>(victim.item), victim.tag);
    } else {
      slot = u.size;
    }
    node(user, slot) = Node{static_cast<std::uint32_t>(item), kNull16,
                            kNull16, tag};
    push_back(user, u, slot);
    ++u.size;
  }
};

/// LFU for capacities ≤ kInlineResidencyCapacity: per-user block of packed
/// 16-byte nodes carrying their frequency, threaded into ONE chain kept in
/// flattened bucket order — ascending frequency, most-recently-bumped first
/// within a frequency. That ordering makes the legacy bucket structure's
/// operations pure chain operations:
///   * new item (freq 1)  -> push_front (front of the freq-1 bucket),
///   * bump f -> f+1      -> reinsert before the first node with freq > f
///                           (the front of the f+1 bucket),
///   * victim             -> last node of the head's equal-frequency run
///                           (LRU within the lowest bucket).
/// Every walk is block-local (≤ 16 nodes in 4 cache lines).
class SmallLfuArena {
 public:
  SmallLfuArena(std::size_t num_users, std::size_t capacity,
                std::uint64_t /*seed*/)
      : capacity_(static_cast<std::uint16_t>(capacity)), users_(num_users) {
    SPECPF_EXPECTS(capacity >= 1);
    SPECPF_EXPECTS(capacity <= kInlineResidencyCapacity);
    nodes_.resize(num_users * capacity);
  }

  std::optional<EntryTag> lookup(std::uint32_t user, ItemId item) {
    const std::uint16_t slot = find_slot(user, item);
    if (slot == kNull16) return std::nullopt;
    const EntryTag tag = node(user, slot).tag;
    bump(user, slot);
    return tag;
  }

  bool contains(std::uint32_t user, ItemId item) const {
    return find_slot(user, item) != kNull16;
  }

  bool set_tag(std::uint32_t user, ItemId item, EntryTag tag) {
    const std::uint16_t slot = find_slot(user, item);
    if (slot == kNull16) return false;
    node(user, slot).tag = tag;
    return true;
  }

  std::uint32_t size(std::uint32_t user) const { return users_[user].size; }

  /// Access count of a resident item (0 if absent); exposed for tests.
  std::uint32_t frequency(std::uint32_t user, ItemId item) const {
    const std::uint16_t slot = find_slot(user, item);
    return slot == kNull16 ? 0 : node(user, slot).freq;
  }

  template <typename OnEvict>
  void insert(std::uint32_t user, ItemId item, EntryTag tag,
              OnEvict&& on_evict) {
    UserLfuView& u = users_[user];
    if (const std::uint16_t slot = find_slot(user, item); slot != kNull16) {
      node(user, slot).tag = tag;
      bump(user, slot);
      return;
    }
    std::uint16_t slot;
    if (u.size >= capacity_) {
      slot = victim_slot(user);
      const Node victim = node(user, slot);
      unlink(user, u, slot);
      --u.size;
      on_evict(static_cast<ItemId>(victim.item), victim.tag);
    } else {
      slot = u.size;
    }
    node(user, slot) = Node{static_cast<std::uint32_t>(item), 1, kNull16,
                            kNull16, tag};
    push_front(user, u, slot);  // front of the freq-1 bucket
    ++u.size;
  }

  /// Deep-invariant walker: each user's chain covers exactly the occupied
  /// prefix [0, size) of its block with intact back-links and no cycles,
  /// and frequencies run non-decreasing from head to tail with every
  /// resident entry touched at least once (flattened bucket order).
  void audit(AuditReport& report) const {
    const AuditScope scope(report, "SmallLfuArena");
    for (std::uint32_t user = 0; user < users_.size(); ++user) {
      const UserLfuView& u = users_[user];
      const std::string who = "user " + std::to_string(user);
      report.check(u.size <= capacity_, who + " exceeds capacity");
      std::uint32_t seen = 0;  // bitmap: capacity_ <= 16 slots
      std::uint32_t prev_freq = 1;
      std::uint16_t prev = kNull16;
      std::uint16_t slot = u.head;
      std::uint16_t steps = 0;
      while (slot != kNull16) {
        if (!report.check(slot < u.size,
                          who + ": chain slot " + std::to_string(slot) +
                              " outside the occupied prefix")) {
          break;
        }
        if (!report.check((seen & (1u << slot)) == 0,
                          who + ": chain revisits slot " +
                              std::to_string(slot) + " (cycle)")) {
          break;
        }
        seen |= 1u << slot;
        const Node& n = node(user, slot);
        report.check(n.prev == prev,
                     who + ": broken prev link at slot " +
                         std::to_string(slot));
        report.check(n.freq >= prev_freq,
                     who + ": frequencies not in flattened bucket order at "
                           "slot " +
                         std::to_string(slot));
        prev_freq = n.freq;
        prev = slot;
        slot = n.next;
        ++steps;
      }
      report.check(steps == u.size,
                   who + ": chain walk found " + std::to_string(steps) +
                       " nodes, size() says " + std::to_string(u.size));
      report.check(u.tail == prev, who + ": tail disagrees with chain walk");
    }
  }

 private:
  friend struct specpf::AuditPeer;  // corruption-injection tests only

  static constexpr std::uint16_t kNull16 = 0xFFFF;

  struct Node {  // 16 bytes
    std::uint32_t item = 0;
    std::uint32_t freq = 0;
    std::uint16_t prev = kNull16;
    std::uint16_t next = kNull16;
    EntryTag tag = EntryTag::kUntagged;
  };
  struct UserLfuView {
    std::uint16_t head = kNull16;  // lowest freq, most recent within it
    std::uint16_t tail = kNull16;
    std::uint16_t size = 0;
  };

  std::size_t base(std::uint32_t user) const {
    return static_cast<std::size_t>(user) * capacity_;
  }
  Node& node(std::uint32_t user, std::uint16_t slot) {
    return nodes_[base(user) + slot];
  }
  const Node& node(std::uint32_t user, std::uint16_t slot) const {
    return nodes_[base(user) + slot];
  }

  std::uint16_t find_slot(std::uint32_t user, ItemId item) const {
    SPECPF_DCHECK((item >> 32) == 0);
    const auto item32 = static_cast<std::uint32_t>(item);
    const Node* block = &nodes_[base(user)];
    const std::uint16_t live = users_[user].size;
    for (std::uint16_t i = 0; i < live; ++i) {
      if (block[i].item == item32) return i;
    }
    return kNull16;
  }

  /// Last node of the head's equal-frequency run: LRU within the lowest
  /// frequency bucket.
  std::uint16_t victim_slot(std::uint32_t user) const {
    const UserLfuView& u = users_[user];
    SPECPF_DCHECK(u.head != kNull16);
    std::uint16_t cur = u.head;
    const std::uint32_t freq = node(user, cur).freq;
    while (node(user, cur).next != kNull16 &&
           node(user, node(user, cur).next).freq == freq) {
      cur = node(user, cur).next;
    }
    return cur;
  }

  void unlink(std::uint32_t user, UserLfuView& u, std::uint16_t slot) {
    Node& n = node(user, slot);
    if (n.prev != kNull16) node(user, n.prev).next = n.next;
    if (n.next != kNull16) node(user, n.next).prev = n.prev;
    if (u.head == slot) u.head = n.next;
    if (u.tail == slot) u.tail = n.prev;
    n.prev = n.next = kNull16;
  }

  void push_front(std::uint32_t user, UserLfuView& u, std::uint16_t slot) {
    Node& n = node(user, slot);
    n.prev = kNull16;
    n.next = u.head;
    if (u.head != kNull16) node(user, u.head).prev = slot;
    u.head = slot;
    if (u.tail == kNull16) u.tail = slot;
  }

  /// Moves `slot` from frequency f to f + 1, keeping the chain in
  /// flattened bucket order: reinsert before the first node with
  /// freq > f (i.e. at the front of the f+1 bucket).
  void bump(std::uint32_t user, std::uint16_t slot) {
    UserLfuView& u = users_[user];
    const std::uint32_t freq = node(user, slot).freq;
    unlink(user, u, slot);
    node(user, slot).freq = freq + 1;
    std::uint16_t after = u.head;
    while (after != kNull16 && node(user, after).freq <= freq) {
      after = node(user, after).next;
    }
    if (after == kNull16) {
      // Highest frequency: append at the tail.
      Node& n = node(user, slot);
      n.next = kNull16;
      n.prev = u.tail;
      if (u.tail != kNull16) node(user, u.tail).next = slot;
      u.tail = slot;
      if (u.head == kNull16) u.head = slot;
      return;
    }
    Node& n = node(user, slot);
    Node& succ = node(user, after);
    n.next = after;
    n.prev = succ.prev;
    if (succ.prev != kNull16) node(user, succ.prev).next = slot;
    succ.prev = slot;
    if (u.head == after) u.head = slot;
  }

  std::uint16_t capacity_;
  std::vector<Node> nodes_;
  std::vector<UserLfuView> users_;
};

}  // namespace specpf::arena
