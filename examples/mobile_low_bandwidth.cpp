// Low-bandwidth scenario (the authors' original motivation: prefetching for
// wireless/mobile clients): sweep the shared bandwidth and show where
// speculative prefetching flips from helping to hurting.
//
// For each bandwidth the example prints the analytic threshold p_th next to
// the measured access-time change of (a) the threshold rule and (b) an
// aggressive fixed-threshold prefetcher. As bandwidth shrinks, p_th rises
// toward 1 — the model says "stop prefetching" — and the aggressive
// prefetcher's access time degrades exactly as predicted.
//
//   ./mobile_low_bandwidth --duration 900
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "policy/policies.hpp"
#include "sim/proxy_sim.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

namespace {

std::vector<double> parse_double_list(const std::string& csv,
                                      std::vector<double> fallback) {
  std::vector<double> out;
  for (const std::string& tok : specpf::split_csv(csv)) {
    try {
      std::size_t consumed = 0;
      const double v = std::stod(tok, &consumed);
      if (consumed != tok.size()) throw std::invalid_argument(tok);
      out.push_back(v);
    } catch (...) {
      std::fprintf(stderr, "ignoring malformed bandwidth '%s'\n", tok.c_str());
    }
  }
  return out.empty() ? fallback : out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace specpf;
  ArgParser args("mobile_low_bandwidth",
                 "Bandwidth sweep: when does prefetching stop paying?");
  args.add_flag("duration", "900", "measured seconds per run");
  args.add_flag("users", "6", "number of mobile clients");
  args.add_flag("bandwidths", "80,40,25,18,14,11",
                "comma-separated bandwidths to sweep (pages/s)");
  args.add_flag("pages", "80", "site size (pages)");
  args.add_flag("cache", "24", "per-client cache capacity (pages)");
  args.add_flag("aggressive-theta", "0.02",
                "fixed threshold of the aggressive baseline prefetcher");
  args.add_flag("seed", "17", "random seed");
  if (!args.parse(argc, argv)) return 1;

  ProxySimConfig base;
  base.num_users = static_cast<std::size_t>(args.get_int("users"));
  base.graph.num_pages = static_cast<std::size_t>(args.get_int("pages"));
  base.graph.out_degree = 3;
  base.graph.exit_probability = 0.2;
  base.graph.link_skew = 1.5;
  base.session_rate_per_user = 0.8;
  base.think_time_mean = 0.4;
  base.cache_capacity = static_cast<std::size_t>(args.get_int("cache"));
  base.duration = args.get_double("duration");
  base.warmup = base.duration / 10.0;
  base.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  Table table({"bandwidth", "rho' (none)", "p_th est", "t none", "t threshold",
               "t aggressive", "threshold vs none", "aggressive vs none"});
  table.set_precision(4);

  for (double bandwidth : parse_double_list(
           args.get_string("bandwidths"), {80.0, 40.0, 25.0, 18.0, 14.0,
                                           11.0})) {
    ProxySimConfig cfg = base;
    cfg.bandwidth = bandwidth;

    NoPrefetchPolicy none;
    const auto r_none = run_proxy_sim(cfg, none);

    ThresholdPolicy threshold(core::InteractionModel::kModelA);
    const auto r_thresh = run_proxy_sim(cfg, threshold);

    FixedThresholdPolicy aggressive(args.get_double("aggressive-theta"));
    const auto r_aggr = run_proxy_sim(cfg, aggressive);

    // p_th as the deployed policy would estimate it at the end of the run.
    core::SystemParams params;
    params.bandwidth = bandwidth;
    params.request_rate = static_cast<double>(r_none.requests) /
                          (cfg.duration + cfg.warmup);
    params.mean_item_size = cfg.item_size;
    params.hit_ratio = r_none.hit_ratio;
    const double pth =
        core::threshold(params, core::InteractionModel::kModelA);

    table.add_row({bandwidth, r_none.server_utilization, std::min(1.0, pth),
                   r_none.mean_access_time, r_thresh.mean_access_time,
                   r_aggr.mean_access_time,
                   r_thresh.mean_access_time / r_none.mean_access_time,
                   r_aggr.mean_access_time / r_none.mean_access_time});
  }

  table.print(std::cout);
  std::printf(
      "Reading: 'vs none' < 1 means prefetching helped. The threshold rule\n"
      "stays <= 1 across the sweep; the aggressive prefetcher helps at high\n"
      "bandwidth and collapses once the link saturates — the paper's core\n"
      "warning about prefetching under load.\n");
  return 0;
}
