// Quickstart: the paper's result in ten lines — compute the prefetch
// threshold for your system, decide what to prefetch, and predict the
// resulting access-time improvement.
//
//   ./quickstart --bandwidth 50 --lambda 30 --size 1 --hprime 0.3
#include <cstdio>

#include "core/excess_cost.hpp"
#include "core/planner.hpp"
#include "util/argparse.hpp"

int main(int argc, char** argv) {
  using namespace specpf;
  ArgParser args("quickstart", "Threshold rule in a nutshell");
  args.add_flag("bandwidth", "50", "shared link bandwidth b (units/s)");
  args.add_flag("lambda", "30", "aggregate request rate (req/s)");
  args.add_flag("size", "1", "mean item size s̄ (units)");
  args.add_flag("hprime", "0.3", "cache hit ratio without prefetching");
  if (!args.parse(argc, argv)) return 1;

  // 1. Describe the system (paper §2).
  core::SystemParams params;
  params.bandwidth = args.get_double("bandwidth");
  params.request_rate = args.get_double("lambda");
  params.mean_item_size = args.get_double("size");
  params.hit_ratio = args.get_double("hprime");

  const auto baseline = core::analyze_no_prefetch(params);
  std::printf("no-prefetch baseline: utilisation rho'=%.3f, "
              "mean access time t'=%.4fs\n",
              baseline.utilization, baseline.access_time);

  // 2. The headline result: prefetch EXCLUSIVELY ALL items whose access
  //    probability exceeds p_th = rho' (Model A, eq. 13).
  core::PrefetchPlanner planner(params, core::InteractionModel::kModelA);
  std::printf("prefetch threshold p_th = %.3f\n\n", planner.threshold());

  // 3. Feed it candidates (normally from an access predictor). Candidate
  //    probabilities describe the *next* access, so they sum to at most 1.
  const std::vector<core::Candidate> candidates{
      {101, 0.55}, {102, 0.30}, {103, 0.10}, {104, 0.04}};
  const auto plan = planner.plan(candidates);
  for (const auto& c : candidates) {
    std::printf("  item %llu  p=%.2f  -> %s\n",
                static_cast<unsigned long long>(c.item), c.probability,
                c.probability > plan.threshold ? "PREFETCH" : "skip");
  }

  // 4. Predicted effect of that plan (eqs. 7-11 generalised).
  std::printf("\npredicted: hit ratio %.3f -> %.3f, access time %.4fs -> "
              "%.4fs (gain %.4fs)\n",
              params.hit_ratio, plan.predicted_hit_ratio,
              baseline.access_time, plan.predicted_access_time,
              plan.predicted_gain);
  std::printf("excess retrieval cost C = %.4fs per request (eq. 27)\n",
              plan.predicted_excess_cost);
  return 0;
}
