// Operations-facing planner: given a link and workload, print the prefetch
// threshold across load levels, the safe prefetch-rate envelope, and the
// bandwidth headroom needed before speculative prefetching pays off.
//
//   ./capacity_planner --bandwidth 100 --size 2 --hprime 0.4
#include <cstdio>
#include <iostream>

#include "core/excess_cost.hpp"
#include "core/interaction.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace specpf;
  ArgParser args("capacity_planner",
                 "Prefetch feasibility envelope for a shared link");
  args.add_flag("bandwidth", "100", "link bandwidth b (units/s)");
  args.add_flag("size", "2", "mean item size s̄ (units)");
  args.add_flag("hprime", "0.4", "cache hit ratio without prefetching");
  args.add_flag("cache-items", "200", "average cache occupancy n̄(C)");
  args.add_flag("p", "0.6", "access probability of prefetch candidates");
  if (!args.parse(argc, argv)) return 1;

  core::SystemParams params;
  params.bandwidth = args.get_double("bandwidth");
  params.mean_item_size = args.get_double("size");
  params.hit_ratio = args.get_double("hprime");
  params.cache_items = args.get_double("cache-items");
  const double p = args.get_double("p");

  const double lambda_max =
      params.bandwidth / (params.fault_ratio() * params.mean_item_size);

  std::printf("link: b=%.0f units/s, s̄=%.1f, h'=%.2f  (demand saturates at "
              "lambda=%.1f req/s)\n\n",
              params.bandwidth, params.mean_item_size, params.hit_ratio,
              lambda_max);

  Table table({"lambda", "rho'", "p_th (A)", "p_th (B)", "t' (ms)",
               "max n̄(F) @p", "C @ n̄(F)=0.5 (ms)", "verdict @p"});
  table.set_precision(3);

  for (double frac : {0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 0.95}) {
    const double lambda = frac * lambda_max;
    params.request_rate = lambda;
    const auto base = core::analyze_no_prefetch(params);
    const double pth_a =
        core::threshold(params, core::InteractionModel::kModelA);
    const double pth_b =
        core::threshold(params, core::InteractionModel::kModelB);

    double max_nf = 0.0;
    double cost = 0.0;
    std::string verdict;
    if (p > pth_a) {
      max_nf = std::min(core::max_candidates(params, p),
                        core::prefetch_rate_capacity_limit(
                            params, p, core::InteractionModel::kModelA));
      const auto at_half = core::analyze(params, {p, std::min(0.5, max_nf)},
                                         core::InteractionModel::kModelA);
      cost = at_half.conditions.total_within_capacity
                 ? core::excess_cost(at_half.utilization,
                                     base.utilization, lambda) * 1e3
                 : 0.0;
      verdict = "prefetch";
    } else {
      verdict = "DON'T (p<=p_th)";
    }
    table.add_row({lambda, base.utilization, std::min(1.0, pth_a),
                   std::min(1.0, pth_b), base.access_time * 1e3, max_nf, cost,
                   verdict});
  }
  table.print(std::cout);
  std::printf("Rule (paper, §3): prefetch exclusively all items with access "
              "probability above p_th;\nabove that bar, more prefetching "
              "only helps — below it, any prefetching hurts.\n");
  return 0;
}
