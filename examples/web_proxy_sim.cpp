// Full-stack scenario: a shared web proxy with N browsing clients, per-user
// LRU caches, a learned Markov predictor, and the paper's threshold policy —
// compared head-to-head against no prefetching on the same workload seed.
//
//   ./web_proxy_sim --users 8 --bandwidth 40 --duration 1200
#include <cstdio>
#include <iostream>

#include "policy/policies.hpp"
#include "sim/proxy_sim.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace specpf;
  ArgParser args("web_proxy_sim",
                 "Multi-user proxy with learned prediction + threshold rule");
  args.add_flag("users", "8", "number of browsing clients");
  args.add_flag("bandwidth", "40", "shared link bandwidth (pages/s)");
  args.add_flag("pages", "120", "site size (pages)");
  args.add_flag("cache", "32", "per-client cache capacity (pages)");
  args.add_flag("duration", "1200", "measured seconds");
  args.add_flag("session-rate", "0.7", "session starts per client per second");
  args.add_flag("think", "0.5", "mean think time between clicks (s)");
  args.add_flag("link-skew", "1.4", "Zipf skew across a page's links");
  args.add_flag("seed", "2001", "random seed");
  args.add_flag("predictor", "markov", "markov|ppm|depgraph|frequency|oracle");
  args.add_flag("legacy-predictors", "0",
                "1 = legacy virtual tables instead of the SoA plane");
  if (!args.parse(argc, argv)) return 1;

  ProxySimConfig cfg;
  cfg.num_users = static_cast<std::size_t>(args.get_int("users"));
  cfg.bandwidth = args.get_double("bandwidth");
  cfg.graph.num_pages = static_cast<std::size_t>(args.get_int("pages"));
  cfg.graph.out_degree = 4;
  cfg.graph.exit_probability = 0.18;
  cfg.graph.link_skew = args.get_double("link-skew");
  cfg.session_rate_per_user = args.get_double("session-rate");
  cfg.think_time_mean = args.get_double("think");
  cfg.cache_capacity = static_cast<std::size_t>(args.get_int("cache"));
  cfg.duration = args.get_double("duration");
  cfg.warmup = cfg.duration / 10.0;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const std::string predictor = args.get_string("predictor");
  if (!parse_predictor_kind(predictor, &cfg.predictor_kind)) {
    std::fprintf(stderr, "unknown predictor '%s'\n", predictor.c_str());
    return 1;
  }
  cfg.use_legacy_predictors = args.get_int("legacy-predictors") != 0;

  std::printf("web proxy: %zu clients, b=%.0f, %zu pages, predictor=%s\n\n",
              cfg.num_users, cfg.bandwidth, cfg.graph.num_pages,
              predictor.c_str());

  Table table({"policy", "access time", "hit ratio", "rho", "prefetch/req",
               "useful frac", "h' estimate"});
  table.set_precision(4);

  NoPrefetchPolicy none;
  const auto base = run_proxy_sim(cfg, none);
  table.add_row({base.policy, base.mean_access_time, base.hit_ratio,
                 base.server_utilization, 0.0, 0.0, base.hprime_estimate});

  ThresholdPolicy threshold(core::InteractionModel::kModelA);
  const auto pref = run_proxy_sim(cfg, threshold);
  table.add_row({pref.policy, pref.mean_access_time, pref.hit_ratio,
                 pref.server_utilization,
                 static_cast<double>(pref.prefetch_jobs) /
                     static_cast<double>(pref.requests),
                 pref.prefetch_useful_fraction, pref.hprime_estimate});

  table.print(std::cout);
  const double speedup = base.mean_access_time / pref.mean_access_time;
  std::printf("threshold-rule speedup over cache-only: %.2fx\n", speedup);
  return 0;
}
