// ETEL-style electronic newspaper (paper ref. [1]): strongly patterned
// reading paths — front page, then sections, then articles. Demonstrates
// trace recording/replay and the server-side dependency-graph predictor of
// Padmanabhan & Mogul (paper ref. [7]) feeding the threshold rule.
//
//   ./newspaper_sessions --trace /tmp/newspaper.csv
#include <cstdio>
#include <iostream>

#include "policy/policies.hpp"
#include "predict/dependency_graph.hpp"
#include "sim/proxy_sim.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace specpf;
  ArgParser args("newspaper_sessions",
                 "Patterned newspaper browsing with dependency-graph "
                 "prediction");
  args.add_flag("duration", "1200", "measured seconds per run");
  args.add_flag("users", "8", "number of concurrent readers");
  args.add_flag("bandwidth", "45", "shared link bandwidth (pages/s)");
  args.add_flag("pages", "200", "site size (pages)");
  args.add_flag("cache", "40", "per-reader cache capacity (pages)");
  args.add_flag("link-skew", "2.0",
                "Zipf skew across a page's links (readers follow the lead "
                "story)");
  args.add_flag("entry-skew", "1.5",
                "Zipf skew of session entries (front page dominates)");
  args.add_flag("seed", "1997", "random seed (default: the ETEL year)");
  args.add_flag("trace", "", "optional path to dump the workload trace CSV");
  if (!args.parse(argc, argv)) return 1;

  // A newspaper: few entry pages (front page dominates via entry_skew),
  // heavily skewed link choices (lead story first).
  ProxySimConfig cfg;
  cfg.num_users = static_cast<std::size_t>(args.get_int("users"));
  cfg.bandwidth = args.get_double("bandwidth");
  cfg.graph.num_pages = static_cast<std::size_t>(args.get_int("pages"));
  cfg.graph.out_degree = 5;
  cfg.graph.exit_probability = 0.15;
  cfg.graph.link_skew = args.get_double("link-skew");
  cfg.graph.entry_skew = args.get_double("entry-skew");
  cfg.session_rate_per_user = 0.6;
  cfg.think_time_mean = 0.6;
  cfg.cache_capacity = static_cast<std::size_t>(args.get_int("cache"));
  cfg.predictor_kind = ProxySimConfig::PredictorKind::kDependencyGraph;
  cfg.duration = args.get_double("duration");
  cfg.warmup = cfg.duration / 10.0;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  Table table({"policy", "access time", "hit ratio", "rho", "useful frac"});
  table.set_precision(4);

  NoPrefetchPolicy none;
  const auto base = run_proxy_sim(cfg, none);
  table.add_row({base.policy, base.mean_access_time, base.hit_ratio,
                 base.server_utilization, 0.0});

  ThresholdPolicy threshold(core::InteractionModel::kModelA);
  const auto pref = run_proxy_sim(cfg, threshold);
  table.add_row({pref.policy, pref.mean_access_time, pref.hit_ratio,
                 pref.server_utilization, pref.prefetch_useful_fraction});

  TopKPolicy topk(1);
  const auto tk = run_proxy_sim(cfg, topk);
  table.add_row({tk.policy, tk.mean_access_time, tk.hit_ratio,
                 tk.server_utilization, tk.prefetch_useful_fraction});

  table.print(std::cout);

  // Demonstrate the trace tooling on the same session model.
  const std::string trace_path = args.get_string("trace");
  Rng rng(42);
  SessionGraph graph(cfg.graph, 1);
  Trace trace;
  double t = 0.0;
  for (int session = 0; session < 200; ++session) {
    t += 3.0;
    for (std::uint64_t page : graph.sample_session(rng)) {
      trace.append({t, static_cast<std::uint32_t>(
                           session % static_cast<int>(cfg.num_users)),
                    page});
      t += 0.5;
    }
  }
  std::printf("sample workload: %zu requests, %zu unique pages, "
              "%.2f req/s mean rate\n",
              trace.size(), trace.unique_items(), trace.mean_request_rate());
  if (!trace_path.empty()) {
    trace.save_csv_file(trace_path);
    const Trace reloaded = Trace::load_csv_file(trace_path);
    std::printf("trace written to %s and re-read (%zu records)\n",
                trace_path.c_str(), reloaded.size());
  }
  return 0;
}
