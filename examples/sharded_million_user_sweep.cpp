// Sharded million-user sweep: the multi-core scaling demo for the sharded
// runtime. Partitions a million-user synthetic trace across S regional
// shards (one slab engine + flat-hash data plane each), runs the
// conservative epoch loop at several worker-thread counts, and reports
// wall-clock scaling plus the cross-shard backbone load the paper's
// threshold rule is supposed to keep in check.
//
// Results are bit-deterministic: every thread count must produce the same
// merged metrics, and the binary verifies that before printing.
//
//   ./sharded_million_user_sweep --users 1000000 --requests 3000000
//       --shards 8 --threads 1,2,4,8 --policy threshold-a
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "policy/policies.hpp"
#include "shard/sharded_sim.hpp"
#include "util/argparse.hpp"
#include "util/mem.hpp"
#include "util/table.hpp"
#include "workload/progress_source.hpp"
#include "workload/synthetic_trace.hpp"
#include "workload/trace_file.hpp"

namespace {

using namespace specpf;
using Clock = std::chrono::steady_clock;

/// Fresh-instance factory over the library's name→policy mapping; unknown
/// names fall back to threshold-a.
PolicyFactory policy_factory(std::string name) {
  if (!make_policy_by_name(name)) {
    std::fprintf(stderr, "unknown policy '%s', using threshold-a\n",
                 name.c_str());
    name = "threshold-a";
  }
  return [name] { return make_policy_by_name(name); };
}

std::vector<std::size_t> parse_thread_list(const std::string& csv) {
  std::vector<std::size_t> out;
  for (const std::string& tok : split_csv(csv)) {
    try {
      out.push_back(static_cast<std::size_t>(std::stoul(tok)));
    } catch (...) {
      std::fprintf(stderr, "ignoring malformed thread count '%s'\n",
                   tok.c_str());
    }
  }
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("sharded_million_user_sweep",
                 "Multi-core scaling of the sharded million-user replay");
  args.add_flag("users", "1000000", "population size");
  args.add_flag("requests", "3000000", "total trace length");
  args.add_flag("rate", "10000", "aggregate request rate (req/s)");
  args.add_flag("pages", "400", "site size (pages)");
  args.add_flag("cache", "8", "per-user cache capacity (pages)");
  args.add_flag("bandwidth", "2500", "per-region link bandwidth (pages/s)");
  args.add_flag("shards", "8", "number of regional shards");
  args.add_flag("threads", "1,2,4,8",
                "comma-separated worker-thread counts to sweep");
  args.add_flag("policy", "threshold-a",
                "policy: none|threshold-a|threshold-b|fixed-<theta>|"
                "topk-<k>|adaptive-<w>|qos-<rho>");
  args.add_flag("backbone-bandwidth", "40000",
                "per-region origin uplink bandwidth (pages/s)");
  args.add_flag("backbone-latency", "0.05",
                "cross-shard latency = epoch lookahead (s)");
  args.add_flag("seed", "2001", "random seed");
  args.add_flag("legacy-caches", "false",
                "run the legacy per-user TaggedCache fleet instead of the "
                "slab-backed arena cache plane");
  args.add_flag("legacy-predictors", "false",
                "run the legacy virtual Predictor tables instead of the "
                "slab-backed SoA predictor plane");
  args.add_flag("trace", "",
                "export a Chrome trace-event JSON (Perfetto-loadable) for "
                "the first thread-count run");
  args.add_flag("timeseries", "",
                "export the sampled gauge time series as CSV for the first "
                "thread-count run");
  args.add_flag("sample-interval", "0.25",
                "telemetry gauge sampling cadence (sim-seconds)");
  args.add_flag("per-shard-stats", "false",
                "print the per-shard event/mailbox breakdown per run");
  args.add_flag("stream", "false",
                "stream the synthetic generator straight into the shard "
                "feeder (no in-RAM trace; RSS stays bounded)");
  args.add_flag("trace-file", "",
                "replay a binary .spt trace via the mmap'd cursor instead "
                "of generating one");
  args.add_flag("progress", "false",
                "print a wall-clock heartbeat (records fed, req/s, peak RSS) "
                "to stderr while each run streams");
  if (!args.parse(argc, argv)) return 1;

  const std::string trace_path = args.get_string("trace");
  const std::string series_path = args.get_string("timeseries");
  TelemetryConfig tele_cfg;
  tele_cfg.sample_interval = args.get_double("sample-interval");

  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = static_cast<std::size_t>(args.get_int("users"));
  trace_cfg.num_requests = static_cast<std::size_t>(args.get_int("requests"));
  trace_cfg.request_rate = args.get_double("rate");
  trace_cfg.graph.num_pages = static_cast<std::size_t>(args.get_int("pages"));
  trace_cfg.graph.out_degree = 3;
  trace_cfg.graph.exit_probability = 0.25;
  trace_cfg.graph.link_skew = 1.6;
  trace_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  // Request supply: in-RAM trace (default), streamed generator, or a
  // binary .spt trace through the mmap cursor. The streamed forms feed the
  // shard engines epoch-by-epoch at bounded RSS; every thread-count run
  // rewinds and replays the identical record sequence.
  std::unique_ptr<Trace> ram;
  std::unique_ptr<TraceFile> file;
  std::unique_ptr<TraceSource> stream;
  std::uint64_t population = trace_cfg.num_users;
  auto t0 = Clock::now();
  const std::string file_path = args.get_string("trace-file");
  if (!file_path.empty()) {
    file = std::make_unique<TraceFile>(file_path);
    stream = std::make_unique<TraceCursor>(*file);
    population = file->header().unique_users;
    std::printf("trace file %s: %llu records, %llu users, %.0fs span\n",
                file_path.c_str(),
                static_cast<unsigned long long>(file->record_count()),
                static_cast<unsigned long long>(file->header().unique_users),
                file->duration());
  } else if (args.get_bool("stream")) {
    stream = std::make_unique<SyntheticTraceStream>(trace_cfg);
    std::printf("streaming generator: %zu requests over %zu users (never "
                "materialized)\n",
                trace_cfg.num_requests, trace_cfg.num_users);
  } else {
    std::printf("generating %zu requests over %zu users...\n",
                trace_cfg.num_requests, trace_cfg.num_users);
    ram = std::make_unique<Trace>(generate_synthetic_trace(trace_cfg));
    population = ram->unique_users();
    std::printf("  %.1fs (%zu unique users, %.0fs span)\n",
                std::chrono::duration<double>(Clock::now() - t0).count(),
                ram->unique_users(), ram->duration());
  }

  // --progress wraps the selected supply in the heartbeat decorator
  // (in-RAM traces through a TraceVectorSource view — bit-identical to the
  // Trace overload, which wraps the same way internally).
  std::unique_ptr<TraceVectorSource> ram_view;
  std::unique_ptr<ProgressTraceSource> progress;
  if (args.get_bool("progress")) {
    TraceSource* inner = stream.get();
    if (inner == nullptr) {
      ram_view = std::make_unique<TraceVectorSource>(*ram);
      inner = ram_view.get();
    }
    progress = std::make_unique<ProgressTraceSource>(*inner, "sharded-replay");
  }

  ShardedReplayConfig cfg;
  cfg.stack.bandwidth = args.get_double("bandwidth");
  cfg.stack.cache_capacity = static_cast<std::size_t>(args.get_int("cache"));
  cfg.stack.predictor_kind = TraceReplayConfig::PredictorKind::kMarkov;
  cfg.stack.max_prefetch_per_request = 4;
  cfg.stack.seed = trace_cfg.seed;
  cfg.stack.use_legacy_caches = args.get_bool("legacy-caches");
  cfg.stack.use_legacy_predictors = args.get_bool("legacy-predictors");
  cfg.num_shards = static_cast<std::size_t>(args.get_int("shards"));
  cfg.backbone_bandwidth = args.get_double("backbone-bandwidth");
  cfg.backbone_latency = args.get_double("backbone-latency");
  const PolicyFactory factory = policy_factory(args.get_string("policy"));

  const std::vector<std::size_t> thread_counts =
      parse_thread_list(args.get_string("threads"));

  Table table({"threads", "wall s", "req/s", "speedup", "epochs",
               "cross-shard", "backbone rho", "access time", "hit ratio",
               "peak MB", "B/user"});
  table.set_precision(4);
  double base_secs = 0.0;
  ShardedReplayResult reference;
  bool have_reference = false;
  bool deterministic = true;
  for (std::size_t threads : thread_counts) {
    cfg.num_threads = threads;
    // Telemetry records on the first thread-count run only; it is pure
    // observation, so the later runs it skips still reproduce the same
    // merged results (which the determinism check below verifies).
    std::unique_ptr<TelemetryFleet> fleet;
    const bool telemetry_on =
        (!trace_path.empty() || !series_path.empty()) && !have_reference;
    if (telemetry_on) {
      fleet = std::make_unique<TelemetryFleet>(tele_cfg, cfg.num_shards);
      cfg.telemetry = fleet.get();
    }
    const MemoryUsage mem_before = read_memory_usage();
    t0 = Clock::now();
    const ShardedReplayResult r =
        progress ? run_sharded_replay(*progress, cfg, factory)
        : ram    ? run_sharded_replay(*ram, cfg, factory)
                 : run_sharded_replay(*stream, cfg, factory);
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    cfg.telemetry = nullptr;
    if (telemetry_on && !trace_path.empty() &&
        !write_chrome_trace(trace_path, *fleet)) {
      std::fprintf(stderr, "cannot write trace '%s'\n", trace_path.c_str());
    }
    if (telemetry_on && !series_path.empty() &&
        !write_timeseries_csv(series_path, *fleet)) {
      std::fprintf(stderr, "cannot write series '%s'\n", series_path.c_str());
    }
    if (args.get_bool("per-shard-stats")) {
      std::printf("threads %zu per-shard breakdown:\n", threads);
      for (std::size_t s = 0; s < r.num_shards; ++s) {
        const ShardLoadStats& load = r.shard_load[s];
        std::printf("  shard %zu: %llu requests, %llu events, mbox %llu out "
                    "/ %llu in\n",
                    s,
                    static_cast<unsigned long long>(r.per_shard[s].requests),
                    static_cast<unsigned long long>(load.events_executed),
                    static_cast<unsigned long long>(load.mailbox_sent),
                    static_cast<unsigned long long>(load.mailbox_received));
      }
    }
    // Fleet footprint per user: growth of the RSS high-water mark over this
    // run (the first thread-count row carries the cost; later rows reuse
    // freed pages and report marginal growth).
    const MemoryUsage mem_after = read_memory_usage();
    const double run_bytes_per_user =
        mem_after.peak_resident_bytes > mem_before.peak_resident_bytes
            ? static_cast<double>(mem_after.peak_resident_bytes -
                                  mem_before.peak_resident_bytes) /
                  static_cast<double>(population)
            : 0.0;
    if (!have_reference) {
      base_secs = secs;
      reference = r;
      have_reference = true;
    } else if (r.merged.mean_access_time != reference.merged.mean_access_time ||
               r.merged.requests != reference.merged.requests ||
               r.backbone.jobs() != reference.backbone.jobs()) {
      deterministic = false;
    }
    table.add_row({static_cast<std::int64_t>(threads), secs,
                   static_cast<double>(r.merged.requests) / secs,
                   base_secs / secs, static_cast<std::int64_t>(r.epochs),
                   static_cast<std::int64_t>(r.cross_shard_events),
                   r.backbone.utilization, r.merged.mean_access_time,
                   r.merged.hit_ratio,
                   static_cast<double>(mem_after.peak_resident_bytes) / 1e6,
                   run_bytes_per_user});
  }
  std::printf("\n%s\n", table.to_markdown().c_str());
  std::printf("%zu shards, policy=%s, cache backend=%s, "
              "determinism across thread counts: %s\n",
              cfg.num_shards, args.get_string("policy").c_str(),
              cfg.stack.use_legacy_caches ? "legacy" : "arena",
              deterministic ? "OK (bit-identical)" : "FAILED");
  return deterministic ? 0 : 1;
}
