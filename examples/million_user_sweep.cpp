// Million-user trace sweep: drives the full data plane (per-user tagged
// caches, in-flight bookkeeping, learned predictor, threshold policy)
// end-to-end against a large request trace — the paper's network-load
// question at the population scale where prefetcher metadata efficiency
// dominates.
//
// The request supply is pluggable (workload/trace_stream.hpp):
//   default          generate the synthetic trace in RAM (24 B/record)
//   --stream         stream the generator straight into the replay — no
//                    materialized trace, RSS bounded at any --requests
//   --trace-file F   replay a binary .spt trace through the mmap'd
//                    zero-copy cursor (workload/trace_file.hpp)
//   --from-csv F     load a CSV trace into RAM
//   --in-ram         with --trace-file: decode to RAM first (the paired
//                    baseline for streamed-vs-in-RAM comparisons)
// and the selected source can be converted instead of replayed:
//   --convert OUT.spt   write it as a binary trace and exit
//   --save-csv OUT.csv  write it as CSV and exit (both flags compose)
//
// With --shards > 1 the population is split across a sharded fleet
// (shard/sharded_sim.hpp): one engine per shard, conservative epoch
// barriers, cross-shard traffic on the backbone — and --threads worker
// threads drive the shards in parallel with bit-identical results.
//
//   ./million_user_sweep --users 1000000 --requests 3000000
//   ./million_user_sweep --shards 8 --threads 8 --policy threshold-a
//   ./million_user_sweep --requests 100000000 --stream       # out-of-core
//   ./million_user_sweep --convert big.spt --stream --requests 100000000
//   ./million_user_sweep --trace-file big.spt --shards 4
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "policy/policies.hpp"
#include "shard/sharded_sim.hpp"
#include "sim/trace_replay.hpp"
#include "util/argparse.hpp"
#include "util/mem.hpp"
#include "util/table.hpp"
#include "workload/progress_source.hpp"
#include "workload/synthetic_trace.hpp"
#include "workload/trace_file.hpp"

namespace {

using namespace specpf;

/// Fresh-instance factory (shards need one instance each) over the
/// library's name→policy mapping; unknown names fall back to threshold-a.
PolicyFactory policy_factory(std::string name) {
  if (!make_policy_by_name(name)) {
    std::fprintf(stderr, "unknown policy '%s', using threshold-a\n",
                 name.c_str());
    name = "threshold-a";
  }
  return [name] { return make_policy_by_name(name); };
}

/// Inserts "-<token>" before the path's extension so a multi-policy sweep
/// never overwrites its own telemetry exports.
std::string suffixed_path(const std::string& base, const std::string& token) {
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos || base.find('/', dot) != std::string::npos) {
    return base + "-" + token;
  }
  return base.substr(0, dot) + "-" + token + base.substr(dot);
}

/// Streams `source` to CSV with round-trip-exact timestamp precision,
/// without materializing a Trace.
bool save_csv_streaming(const std::string& path, TraceSource& source) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "time,user,item\n");
  source.reset();
  TraceRecord r;
  while (source.next(&r)) {
    std::fprintf(f, "%.17g,%u,%llu\n", r.time, r.user,
                 static_cast<unsigned long long>(r.item));
  }
  return std::fclose(f) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;

  ArgParser args("million_user_sweep",
                 "Trace-driven sweep over a million-user population");
  args.add_flag("users", "1000000", "population size");
  args.add_flag("requests", "3000000", "total trace length");
  args.add_flag("rate", "10000", "aggregate request rate (req/s)");
  args.add_flag("pages", "400", "site size (pages)");
  args.add_flag("cache", "8", "per-user cache capacity (pages)");
  args.add_flag("bandwidth", "20000", "per-region link bandwidth (pages/s)");
  args.add_flag("shards", "1", "number of shards (1 = unsharded runtime)");
  args.add_flag("threads", "1",
                "worker threads for the shard driver (0 = hardware)");
  args.add_flag("policy", "none,threshold-a",
                "comma-separated policies: none|threshold-a|threshold-b|"
                "fixed-<theta>|topk-<k>|adaptive-<w>|qos-<rho>");
  args.add_flag("backbone-bandwidth", "40000",
                "per-region origin uplink bandwidth (pages/s)");
  args.add_flag("backbone-latency", "0.05",
                "cross-shard latency = epoch lookahead (s)");
  args.add_flag("seed", "2001", "random seed");
  args.add_flag("governor", "",
                "prefetch governor: noop|token-<rate>|aimd-<setpoint>|"
                "conf-<precision> (empty = ungoverned)");
  args.add_flag("legacy-caches", "false",
                "run the legacy per-user TaggedCache fleet instead of the "
                "slab-backed arena cache plane");
  args.add_flag("legacy-predictors", "false",
                "run the legacy virtual Predictor tables instead of the "
                "slab-backed SoA predictor plane");
  args.add_flag("trace", "",
                "export a Chrome trace-event JSON (Perfetto-loadable) per "
                "policy; '-<policy>' is inserted before the extension");
  args.add_flag("timeseries", "",
                "export the sampled gauge time series as CSV per policy "
                "(same suffix rule as --trace)");
  args.add_flag("sample-interval", "0.25",
                "telemetry gauge sampling cadence (sim-seconds)");
  args.add_flag("per-shard-stats", "false",
                "print the per-shard event/mailbox breakdown (sharded runs)");
  args.add_flag("stream", "false",
                "stream the synthetic generator straight into the replay "
                "(no in-RAM trace; RSS stays bounded at any --requests)");
  args.add_flag("trace-file", "",
                "replay a binary .spt trace via the mmap'd cursor instead "
                "of generating one");
  args.add_flag("from-csv", "", "load the trace from a CSV file (in RAM)");
  args.add_flag("in-ram", "false",
                "with --trace-file: decode the whole file into RAM first "
                "(baseline for streamed-vs-in-RAM comparisons)");
  args.add_flag("convert", "",
                "write the selected source to this .spt path and exit");
  args.add_flag("save-csv", "",
                "write the selected source to this CSV path and exit");
  args.add_flag("stream-window", "65536",
                "records scheduled per engine batch on streamed replays");
  args.add_flag("progress", "false",
                "print a wall-clock heartbeat (records fed, req/s, peak RSS) "
                "to stderr while the replay streams");
  if (!args.parse(argc, argv)) return 1;

  const std::string trace_path = args.get_string("trace");
  const std::string series_path = args.get_string("timeseries");
  const bool telemetry_on = !trace_path.empty() || !series_path.empty();
  TelemetryConfig tele_cfg;
  tele_cfg.sample_interval = args.get_double("sample-interval");

  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = static_cast<std::size_t>(args.get_int("users"));
  trace_cfg.num_requests = static_cast<std::size_t>(args.get_int("requests"));
  trace_cfg.request_rate = args.get_double("rate");
  trace_cfg.graph.num_pages = static_cast<std::size_t>(args.get_int("pages"));
  trace_cfg.graph.out_degree = 3;
  trace_cfg.graph.exit_probability = 0.25;
  trace_cfg.graph.link_skew = 1.6;
  trace_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  // ---- Request-supply selection -------------------------------------
  // Exactly one of `ram` (in-RAM trace) or `stream` (bounded-RSS source)
  // ends up non-null; `file` keeps the mmap alive for cursor replays.
  std::unique_ptr<Trace> ram;
  std::unique_ptr<TraceFile> file;
  std::unique_ptr<TraceSource> stream;
  std::uint64_t population = 0;  // unique users (B/user denominator)

  const std::string file_path = args.get_string("trace-file");
  const std::string csv_path = args.get_string("from-csv");
  auto t0 = Clock::now();
  if (!file_path.empty()) {
    file = std::make_unique<TraceFile>(file_path);
    const TraceFileHeader& h = file->header();
    population = h.unique_users;
    std::printf(
        "trace file %s: %llu records, %llu users, %llu items, %.0fs span, "
        "%.2f B/record%s\n",
        file_path.c_str(), static_cast<unsigned long long>(h.record_count),
        static_cast<unsigned long long>(h.unique_users),
        static_cast<unsigned long long>(h.unique_items), file->duration(),
        file->bytes_per_record(),
        args.get_bool("in-ram") ? " (decoding to RAM)" : "");
    if (args.get_bool("in-ram")) {
      ram = std::make_unique<Trace>(file->read_all());
    } else {
      stream = std::make_unique<TraceCursor>(*file);
    }
  } else if (!csv_path.empty()) {
    ram = std::make_unique<Trace>(Trace::load_csv_file(csv_path));
    population = ram->unique_users();
    std::printf("CSV trace %s: %zu records, %zu users, %.0fs span\n",
                csv_path.c_str(), ram->size(), ram->unique_users(),
                ram->duration());
  } else if (args.get_bool("stream")) {
    stream = std::make_unique<SyntheticTraceStream>(trace_cfg);
    population = trace_cfg.num_users;  // approx: configured, not appearing
    std::printf("streaming generator: %zu requests over %zu users (never "
                "materialized)\n",
                trace_cfg.num_requests, trace_cfg.num_users);
  } else {
    std::printf("generating %zu requests over %zu users...\n",
                trace_cfg.num_requests, trace_cfg.num_users);
    ram = std::make_unique<Trace>(generate_synthetic_trace(trace_cfg));
    population = ram->unique_users();
    const double gen_secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    std::printf("  %.1fs (%zu unique users, %zu unique items, %.0fs span)\n",
                gen_secs, ram->unique_users(), ram->unique_items(),
                ram->duration());
  }

  // ---- Conversion mode ----------------------------------------------
  const std::string convert_path = args.get_string("convert");
  const std::string save_csv_path = args.get_string("save-csv");
  if (!convert_path.empty() || !save_csv_path.empty()) {
    std::unique_ptr<TraceVectorSource> ram_source;
    TraceSource* src = stream.get();
    if (src == nullptr) {
      ram_source = std::make_unique<TraceVectorSource>(*ram);
      src = ram_source.get();
    }
    if (!convert_path.empty()) {
      t0 = Clock::now();
      const std::uint64_t n = write_trace_file(convert_path, *src);
      const double secs =
          std::chrono::duration<double>(Clock::now() - t0).count();
      const TraceFile out(convert_path);
      std::printf(
          "wrote %s: %llu records in %.1fs (%.2f B/record, %llu chunks, "
          "%.1f MB)\n",
          convert_path.c_str(), static_cast<unsigned long long>(n), secs,
          out.bytes_per_record(),
          static_cast<unsigned long long>(out.header().chunk_count),
          static_cast<double>(out.file_bytes()) / 1e6);
    }
    if (!save_csv_path.empty()) {
      if (!save_csv_streaming(save_csv_path, *src)) {
        std::fprintf(stderr, "cannot write CSV '%s'\n", save_csv_path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", save_csv_path.c_str());
    }
    return 0;
  }

  const auto shards = static_cast<std::size_t>(args.get_int("shards"));
  const auto threads = static_cast<std::size_t>(args.get_int("threads"));

  // --progress wraps whatever supply was selected in the heartbeat
  // decorator; in-RAM traces go through a TraceVectorSource view so they
  // can be decorated too (bit-identical to the Trace overload, which wraps
  // the same way internally).
  std::unique_ptr<TraceVectorSource> ram_view;
  std::unique_ptr<ProgressTraceSource> progress;
  if (args.get_bool("progress")) {
    TraceSource* inner = stream.get();
    if (inner == nullptr) {
      ram_view = std::make_unique<TraceVectorSource>(*ram);
      inner = ram_view.get();
    }
    progress = std::make_unique<ProgressTraceSource>(*inner, "replay");
  }

  TraceReplayConfig replay_cfg;
  replay_cfg.bandwidth = args.get_double("bandwidth");
  replay_cfg.cache_capacity = static_cast<std::size_t>(args.get_int("cache"));
  replay_cfg.predictor_kind = TraceReplayConfig::PredictorKind::kMarkov;
  replay_cfg.max_prefetch_per_request = 4;
  replay_cfg.seed = trace_cfg.seed;
  replay_cfg.use_legacy_caches = args.get_bool("legacy-caches");
  replay_cfg.use_legacy_predictors = args.get_bool("legacy-predictors");
  replay_cfg.governor = args.get_string("governor");
  replay_cfg.stream_window =
      static_cast<std::size_t>(args.get_int("stream-window"));

  Table table({"policy", "access time", "hit ratio", "rho", "demand jobs",
               "prefetch jobs", "throttled", "inflight hits", "backbone jobs",
               "wall s", "req/s", "peak MB", "B/user"});
  table.set_precision(4);
  for (const std::string& name : split_csv(args.get_string("policy"))) {
    const PolicyFactory factory = policy_factory(name);
    const MemoryUsage mem_before = read_memory_usage();
    t0 = Clock::now();
    ProxySimResult r;
    std::uint64_t backbone_jobs = 0;
    std::unique_ptr<TelemetryPlane> plane;
    std::unique_ptr<TelemetryFleet> fleet;
    if (shards <= 1) {
      if (telemetry_on) {
        plane = std::make_unique<TelemetryPlane>(tele_cfg);
        replay_cfg.telemetry = plane.get();
      }
      auto policy = factory();
      r = progress ? run_trace_replay(*progress, replay_cfg, *policy)
          : ram    ? run_trace_replay(*ram, replay_cfg, *policy)
                   : run_trace_replay(*stream, replay_cfg, *policy);
      replay_cfg.telemetry = nullptr;
    } else {
      ShardedReplayConfig sharded_cfg;
      sharded_cfg.stack = replay_cfg;
      sharded_cfg.num_shards = shards;
      sharded_cfg.num_threads = threads;
      sharded_cfg.backbone_bandwidth = args.get_double("backbone-bandwidth");
      sharded_cfg.backbone_latency = args.get_double("backbone-latency");
      if (telemetry_on) {
        fleet = std::make_unique<TelemetryFleet>(tele_cfg, shards);
        sharded_cfg.telemetry = fleet.get();
      }
      const ShardedReplayResult sr =
          progress ? run_sharded_replay(*progress, sharded_cfg, factory)
          : ram    ? run_sharded_replay(*ram, sharded_cfg, factory)
                   : run_sharded_replay(*stream, sharded_cfg, factory);
      r = sr.merged;
      backbone_jobs = sr.backbone.jobs();
      if (args.get_bool("per-shard-stats")) {
        std::printf("policy %s per-shard breakdown:\n", name.c_str());
        for (std::size_t s = 0; s < sr.num_shards; ++s) {
          const ShardLoadStats& load = sr.shard_load[s];
          std::printf(
              "  shard %zu: %llu requests, %llu events, mbox %llu out / "
              "%llu in\n",
              s,
              static_cast<unsigned long long>(sr.per_shard[s].requests),
              static_cast<unsigned long long>(load.events_executed),
              static_cast<unsigned long long>(load.mailbox_sent),
              static_cast<unsigned long long>(load.mailbox_received));
        }
      }
    }
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    if (!trace_path.empty()) {
      const std::string out = suffixed_path(trace_path, name);
      const bool ok = plane ? write_chrome_trace(out, *plane)
                            : write_chrome_trace(out, *fleet);
      if (!ok) std::fprintf(stderr, "cannot write trace '%s'\n", out.c_str());
    }
    if (!series_path.empty()) {
      const std::string out = suffixed_path(series_path, name);
      const bool ok = plane ? write_timeseries_csv(out, *plane)
                            : write_timeseries_csv(out, *fleet);
      if (!ok) std::fprintf(stderr, "cannot write series '%s'\n", out.c_str());
    }
    // Runtime footprint per user: growth of the RSS high-water mark over
    // this run (per-user caches + in-flight bookkeeping + predictor). The
    // first policy row carries the cost; later rows mostly reuse freed
    // pages and report the marginal growth.
    const MemoryUsage mem_after = read_memory_usage();
    const double run_bytes_per_user =
        mem_after.peak_resident_bytes > mem_before.peak_resident_bytes
            ? static_cast<double>(mem_after.peak_resident_bytes -
                                  mem_before.peak_resident_bytes) /
                  static_cast<double>(population)
            : 0.0;
    table.add_row({r.policy, r.mean_access_time, r.hit_ratio,
                   r.server_utilization,
                   static_cast<std::int64_t>(r.demand_jobs),
                   static_cast<std::int64_t>(r.prefetch_jobs),
                   static_cast<std::int64_t>(r.throttled_prefetches),
                   static_cast<std::int64_t>(r.inflight_hits),
                   static_cast<std::int64_t>(backbone_jobs), secs,
                   static_cast<double>(r.requests) / secs,
                   static_cast<double>(mem_after.peak_resident_bytes) / 1e6,
                   run_bytes_per_user});
  }
  std::printf("\n%s\n", table.to_markdown().c_str());
  std::printf("cache backend: %s, governor: %s, supply: %s\n",
              replay_cfg.use_legacy_caches ? "legacy TaggedCache fleet"
                                           : "slab-backed arena plane",
              replay_cfg.governor.empty() ? "(ungoverned)"
                                          : replay_cfg.governor.c_str(),
              ram ? "in-RAM trace" : "streamed source");
  return 0;
}
