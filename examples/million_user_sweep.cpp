// Million-user trace sweep: generates a ≥1M-user synthetic session trace,
// bulk-schedules the whole thing into the engine's O(1)-pop sorted tier via
// run_trace_replay, and drives the full flat-hash data plane (per-user
// tagged caches, in-flight bookkeeping, learned predictor, threshold
// policy) end-to-end — the paper's network-load question at the population
// scale where prefetcher metadata efficiency dominates.
//
//   ./million_user_sweep --users 1000000 --requests 3000000
#include <chrono>
#include <cstdio>

#include "policy/policies.hpp"
#include "sim/trace_replay.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "workload/synthetic_trace.hpp"

int main(int argc, char** argv) {
  using namespace specpf;
  using Clock = std::chrono::steady_clock;

  ArgParser args("million_user_sweep",
                 "Trace-driven sweep over a million-user population");
  args.add_flag("users", "1000000", "population size");
  args.add_flag("requests", "3000000", "total trace length");
  args.add_flag("rate", "10000", "aggregate request rate (req/s)");
  args.add_flag("pages", "400", "site size (pages)");
  args.add_flag("cache", "8", "per-user cache capacity (pages)");
  args.add_flag("bandwidth", "20000", "shared link bandwidth (pages/s)");
  args.add_flag("seed", "2001", "random seed");
  if (!args.parse(argc, argv)) return 1;

  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = static_cast<std::size_t>(args.get_int("users"));
  trace_cfg.num_requests = static_cast<std::size_t>(args.get_int("requests"));
  trace_cfg.request_rate = args.get_double("rate");
  trace_cfg.graph.num_pages = static_cast<std::size_t>(args.get_int("pages"));
  trace_cfg.graph.out_degree = 3;
  trace_cfg.graph.exit_probability = 0.25;
  trace_cfg.graph.link_skew = 1.6;
  trace_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::printf("generating %zu requests over %zu users...\n",
              trace_cfg.num_requests, trace_cfg.num_users);
  auto t0 = Clock::now();
  const Trace trace = generate_synthetic_trace(trace_cfg);
  const double gen_secs = std::chrono::duration<double>(Clock::now() - t0).count();
  std::printf("  %.1fs (%zu unique users, %zu unique items, %.0fs span)\n",
              gen_secs, trace.unique_users(), trace.unique_items(),
              trace.duration());

  TraceReplayConfig replay_cfg;
  replay_cfg.bandwidth = args.get_double("bandwidth");
  replay_cfg.cache_capacity = static_cast<std::size_t>(args.get_int("cache"));
  replay_cfg.predictor_kind = TraceReplayConfig::PredictorKind::kMarkov;
  replay_cfg.max_prefetch_per_request = 4;
  replay_cfg.seed = trace_cfg.seed;

  Table table({"policy", "access time", "hit ratio", "rho", "demand jobs",
               "prefetch jobs", "inflight hits", "wall s", "req/s"});
  table.set_precision(4);
  const char* names[] = {"none", "threshold-A"};
  for (int run = 0; run < 2; ++run) {
    NoPrefetchPolicy none;
    ThresholdPolicy threshold(core::InteractionModel::kModelA);
    PrefetchPolicy& policy =
        run == 0 ? static_cast<PrefetchPolicy&>(none) : threshold;
    t0 = Clock::now();
    const ProxySimResult r = run_trace_replay(trace, replay_cfg, policy);
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    table.add_row({std::string(names[run]), r.mean_access_time, r.hit_ratio,
                   r.server_utilization,
                   static_cast<std::int64_t>(r.demand_jobs),
                   static_cast<std::int64_t>(r.prefetch_jobs),
                   static_cast<std::int64_t>(r.inflight_hits), secs,
                   static_cast<double>(r.requests) / secs});
  }
  std::printf("\n%s\n", table.to_markdown().c_str());
  return 0;
}
