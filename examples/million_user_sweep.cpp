// Million-user trace sweep: generates a ≥1M-user synthetic session trace,
// bulk-schedules the whole thing into the engine's O(1)-pop sorted tier,
// and drives the full flat-hash data plane (per-user tagged caches,
// in-flight bookkeeping, learned predictor, threshold policy) end-to-end —
// the paper's network-load question at the population scale where
// prefetcher metadata efficiency dominates.
//
// With --shards > 1 the population is split across a sharded fleet
// (shard/sharded_sim.hpp): one engine per shard, conservative epoch
// barriers, cross-shard traffic on the backbone — and --threads worker
// threads drive the shards in parallel with bit-identical results.
//
//   ./million_user_sweep --users 1000000 --requests 3000000
//   ./million_user_sweep --shards 8 --threads 8 --policy threshold-a
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "policy/policies.hpp"
#include "shard/sharded_sim.hpp"
#include "sim/trace_replay.hpp"
#include "util/argparse.hpp"
#include "util/mem.hpp"
#include "util/table.hpp"
#include "workload/synthetic_trace.hpp"

namespace {

using namespace specpf;

/// Fresh-instance factory (shards need one instance each) over the
/// library's name→policy mapping; unknown names fall back to threshold-a.
PolicyFactory policy_factory(std::string name) {
  if (!make_policy_by_name(name)) {
    std::fprintf(stderr, "unknown policy '%s', using threshold-a\n",
                 name.c_str());
    name = "threshold-a";
  }
  return [name] { return make_policy_by_name(name); };
}

/// Inserts "-<token>" before the path's extension so a multi-policy sweep
/// never overwrites its own telemetry exports.
std::string suffixed_path(const std::string& base, const std::string& token) {
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos || base.find('/', dot) != std::string::npos) {
    return base + "-" + token;
  }
  return base.substr(0, dot) + "-" + token + base.substr(dot);
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;

  ArgParser args("million_user_sweep",
                 "Trace-driven sweep over a million-user population");
  args.add_flag("users", "1000000", "population size");
  args.add_flag("requests", "3000000", "total trace length");
  args.add_flag("rate", "10000", "aggregate request rate (req/s)");
  args.add_flag("pages", "400", "site size (pages)");
  args.add_flag("cache", "8", "per-user cache capacity (pages)");
  args.add_flag("bandwidth", "20000", "per-region link bandwidth (pages/s)");
  args.add_flag("shards", "1", "number of shards (1 = unsharded runtime)");
  args.add_flag("threads", "1",
                "worker threads for the shard driver (0 = hardware)");
  args.add_flag("policy", "none,threshold-a",
                "comma-separated policies: none|threshold-a|threshold-b|"
                "fixed-<theta>|topk-<k>|adaptive-<w>|qos-<rho>");
  args.add_flag("backbone-bandwidth", "40000",
                "per-region origin uplink bandwidth (pages/s)");
  args.add_flag("backbone-latency", "0.05",
                "cross-shard latency = epoch lookahead (s)");
  args.add_flag("seed", "2001", "random seed");
  args.add_flag("governor", "",
                "prefetch governor: noop|token-<rate>|aimd-<setpoint>|"
                "conf-<precision> (empty = ungoverned)");
  args.add_flag("legacy-caches", "false",
                "run the legacy per-user TaggedCache fleet instead of the "
                "slab-backed arena cache plane");
  args.add_flag("legacy-predictors", "false",
                "run the legacy virtual Predictor tables instead of the "
                "slab-backed SoA predictor plane");
  args.add_flag("trace", "",
                "export a Chrome trace-event JSON (Perfetto-loadable) per "
                "policy; '-<policy>' is inserted before the extension");
  args.add_flag("timeseries", "",
                "export the sampled gauge time series as CSV per policy "
                "(same suffix rule as --trace)");
  args.add_flag("sample-interval", "0.25",
                "telemetry gauge sampling cadence (sim-seconds)");
  args.add_flag("per-shard-stats", "false",
                "print the per-shard event/mailbox breakdown (sharded runs)");
  if (!args.parse(argc, argv)) return 1;

  const std::string trace_path = args.get_string("trace");
  const std::string series_path = args.get_string("timeseries");
  const bool telemetry_on = !trace_path.empty() || !series_path.empty();
  TelemetryConfig tele_cfg;
  tele_cfg.sample_interval = args.get_double("sample-interval");

  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = static_cast<std::size_t>(args.get_int("users"));
  trace_cfg.num_requests = static_cast<std::size_t>(args.get_int("requests"));
  trace_cfg.request_rate = args.get_double("rate");
  trace_cfg.graph.num_pages = static_cast<std::size_t>(args.get_int("pages"));
  trace_cfg.graph.out_degree = 3;
  trace_cfg.graph.exit_probability = 0.25;
  trace_cfg.graph.link_skew = 1.6;
  trace_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::printf("generating %zu requests over %zu users...\n",
              trace_cfg.num_requests, trace_cfg.num_users);
  auto t0 = Clock::now();
  const Trace trace = generate_synthetic_trace(trace_cfg);
  const double gen_secs = std::chrono::duration<double>(Clock::now() - t0).count();
  std::printf("  %.1fs (%zu unique users, %zu unique items, %.0fs span)\n",
              gen_secs, trace.unique_users(), trace.unique_items(),
              trace.duration());

  const auto shards = static_cast<std::size_t>(args.get_int("shards"));
  const auto threads = static_cast<std::size_t>(args.get_int("threads"));

  TraceReplayConfig replay_cfg;
  replay_cfg.bandwidth = args.get_double("bandwidth");
  replay_cfg.cache_capacity = static_cast<std::size_t>(args.get_int("cache"));
  replay_cfg.predictor_kind = TraceReplayConfig::PredictorKind::kMarkov;
  replay_cfg.max_prefetch_per_request = 4;
  replay_cfg.seed = trace_cfg.seed;
  replay_cfg.use_legacy_caches = args.get_bool("legacy-caches");
  replay_cfg.use_legacy_predictors = args.get_bool("legacy-predictors");
  replay_cfg.governor = args.get_string("governor");

  Table table({"policy", "access time", "hit ratio", "rho", "demand jobs",
               "prefetch jobs", "throttled", "inflight hits", "backbone jobs",
               "wall s", "req/s", "peak MB", "B/user"});
  table.set_precision(4);
  for (const std::string& name : split_csv(args.get_string("policy"))) {
    const PolicyFactory factory = policy_factory(name);
    const MemoryUsage mem_before = read_memory_usage();
    t0 = Clock::now();
    ProxySimResult r;
    std::uint64_t backbone_jobs = 0;
    std::unique_ptr<TelemetryPlane> plane;
    std::unique_ptr<TelemetryFleet> fleet;
    if (shards <= 1) {
      if (telemetry_on) {
        plane = std::make_unique<TelemetryPlane>(tele_cfg);
        replay_cfg.telemetry = plane.get();
      }
      auto policy = factory();
      r = run_trace_replay(trace, replay_cfg, *policy);
      replay_cfg.telemetry = nullptr;
    } else {
      ShardedReplayConfig sharded_cfg;
      sharded_cfg.stack = replay_cfg;
      sharded_cfg.num_shards = shards;
      sharded_cfg.num_threads = threads;
      sharded_cfg.backbone_bandwidth = args.get_double("backbone-bandwidth");
      sharded_cfg.backbone_latency = args.get_double("backbone-latency");
      if (telemetry_on) {
        fleet = std::make_unique<TelemetryFleet>(tele_cfg, shards);
        sharded_cfg.telemetry = fleet.get();
      }
      const ShardedReplayResult sr =
          run_sharded_replay(trace, sharded_cfg, factory);
      r = sr.merged;
      backbone_jobs = sr.backbone.jobs();
      if (args.get_bool("per-shard-stats")) {
        std::printf("policy %s per-shard breakdown:\n", name.c_str());
        for (std::size_t s = 0; s < sr.num_shards; ++s) {
          const ShardLoadStats& load = sr.shard_load[s];
          std::printf(
              "  shard %zu: %llu requests, %llu events, mbox %llu out / "
              "%llu in\n",
              s,
              static_cast<unsigned long long>(sr.per_shard[s].requests),
              static_cast<unsigned long long>(load.events_executed),
              static_cast<unsigned long long>(load.mailbox_sent),
              static_cast<unsigned long long>(load.mailbox_received));
        }
      }
    }
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    if (!trace_path.empty()) {
      const std::string out = suffixed_path(trace_path, name);
      const bool ok = plane ? write_chrome_trace(out, *plane)
                            : write_chrome_trace(out, *fleet);
      if (!ok) std::fprintf(stderr, "cannot write trace '%s'\n", out.c_str());
    }
    if (!series_path.empty()) {
      const std::string out = suffixed_path(series_path, name);
      const bool ok = plane ? write_timeseries_csv(out, *plane)
                            : write_timeseries_csv(out, *fleet);
      if (!ok) std::fprintf(stderr, "cannot write series '%s'\n", out.c_str());
    }
    // Runtime footprint per user: growth of the RSS high-water mark over
    // this run (per-user caches + in-flight bookkeeping + predictor). The
    // first policy row carries the cost; later rows mostly reuse freed
    // pages and report the marginal growth.
    const MemoryUsage mem_after = read_memory_usage();
    const double run_bytes_per_user =
        mem_after.peak_resident_bytes > mem_before.peak_resident_bytes
            ? static_cast<double>(mem_after.peak_resident_bytes -
                                  mem_before.peak_resident_bytes) /
                  static_cast<double>(trace.unique_users())
            : 0.0;
    table.add_row({r.policy, r.mean_access_time, r.hit_ratio,
                   r.server_utilization,
                   static_cast<std::int64_t>(r.demand_jobs),
                   static_cast<std::int64_t>(r.prefetch_jobs),
                   static_cast<std::int64_t>(r.throttled_prefetches),
                   static_cast<std::int64_t>(r.inflight_hits),
                   static_cast<std::int64_t>(backbone_jobs), secs,
                   static_cast<double>(r.requests) / secs,
                   static_cast<double>(mem_after.peak_resident_bytes) / 1e6,
                   run_bytes_per_user});
  }
  std::printf("\n%s\n", table.to_markdown().c_str());
  std::printf("cache backend: %s, governor: %s\n",
              replay_cfg.use_legacy_caches ? "legacy TaggedCache fleet"
                                           : "slab-backed arena plane",
              replay_cfg.governor.empty() ? "(ungoverned)"
                                          : replay_cfg.governor.c_str());
  return 0;
}
