// Congestion sweep: governed vs ungoverned prefetching under nonstationary
// load — the closed-loop control plane's headline demo.
//
// For each scenario (stationary / diurnal / flash crowd / per-shard
// hotspot) the sweep replays the same trace under one prefetch policy with
// each governor in turn (plus the ungoverned baseline, sensor on), and
// reports what the link actually saw: peak smoothed queue depth, peak
// slowdown, mean access time, hit ratio, and how many prefetches the
// governor refused. The paper's open-loop threshold rule self-throttles on
// *average* load; these scenarios are where averages lie, and where the
// feedback loop earns its keep.
//
//   ./congestion_sweep --users 100000 --requests 400000 --shards 4
//   ./congestion_sweep --policy fixed-0.05 --governors none,token-2000
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "policy/policies.hpp"
#include "shard/sharded_sim.hpp"
#include "sim/trace_replay.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "workload/synthetic_trace.hpp"

namespace {

using namespace specpf;
using Clock = std::chrono::steady_clock;

PolicyFactory policy_factory(std::string name) {
  if (!make_policy_by_name(name)) {
    std::fprintf(stderr, "unknown policy '%s', using fixed-0.05\n",
                 name.c_str());
    name = "fixed-0.05";
  }
  return [name] { return make_policy_by_name(name); };
}

/// Telemetry output path for one scenario x governor run: inserts
/// "-<scenario>-<gov>" before the extension so a sweep never overwrites
/// its own exports ("out.json" -> "out-flash-token-200.json").
std::string run_output_path(const std::string& base,
                            const std::string& scenario,
                            const std::string& gov) {
  const std::size_t dot = base.find_last_of('.');
  const std::string suffix = "-" + scenario + "-" + gov;
  if (dot == std::string::npos || base.find('/', dot) != std::string::npos) {
    return base + suffix;
  }
  return base.substr(0, dot) + suffix + base.substr(dot);
}

void print_per_shard_stats(const ShardedReplayResult& sr) {
  Table table({"shard", "requests", "hit ratio", "peak depth", "events",
               "mbox sent", "mbox recv"});
  table.set_title("per-shard breakdown (epochs " + std::to_string(sr.epochs) +
                  ", cross-shard events " +
                  std::to_string(sr.cross_shard_events) + ")");
  table.set_precision(4);
  for (std::size_t s = 0; s < sr.num_shards; ++s) {
    const ProxySimResult& r = sr.per_shard[s];
    const ShardLoadStats& load = sr.shard_load[s];
    table.add_row({static_cast<std::int64_t>(s),
                   static_cast<std::int64_t>(r.requests), r.hit_ratio,
                   r.peak_queue_depth,
                   static_cast<std::int64_t>(load.events_executed),
                   static_cast<std::int64_t>(load.mailbox_sent),
                   static_cast<std::int64_t>(load.mailbox_received)});
  }
  table.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("congestion_sweep",
                 "Governed vs ungoverned prefetching under nonstationary "
                 "load");
  args.add_flag("users", "100000", "population size");
  args.add_flag("requests", "400000", "trace length per scenario");
  args.add_flag("rate", "4000", "base aggregate request rate (req/s)");
  args.add_flag("pages", "400", "site size (pages)");
  args.add_flag("cache", "8", "per-user cache capacity (pages)");
  args.add_flag("bandwidth", "23000", "per-region link bandwidth (pages/s)");
  args.add_flag("prefetch", "4", "max prefetch candidates per request");
  args.add_flag("policy", "fixed-0.05",
                "prefetch policy (an aggressive open-loop heuristic shows "
                "the governors best)");
  args.add_flag("governors", "none,token-200,aimd-3,conf-0.35",
                "comma-separated: none|noop|token-<rate>|aimd-<setpoint>|"
                "conf-<precision>");
  args.add_flag("scenarios", "stationary,diurnal,flash,hotspot",
                "comma-separated scenario names");
  args.add_flag("shards", "1", "number of regional shards");
  args.add_flag("threads", "1",
                "worker threads for the shard driver (0 = hardware)");
  args.add_flag("backbone-bandwidth", "46000",
                "per-region origin uplink bandwidth (pages/s)");
  args.add_flag("backbone-latency", "0.05",
                "cross-shard latency = epoch lookahead (s)");
  args.add_flag("seed", "2001", "random seed");
  args.add_flag("trace", "",
                "export a Chrome trace-event JSON (Perfetto-loadable) per "
                "run; '-<scenario>-<governor>' is inserted before the "
                "extension");
  args.add_flag("timeseries", "",
                "export the sampled gauge time series as CSV per run (same "
                "suffix rule as --trace)");
  args.add_flag("sample-interval", "0.25",
                "telemetry gauge sampling cadence (sim-seconds)");
  args.add_flag("per-shard-stats", "false",
                "print the per-shard event/mailbox breakdown (sharded runs)");
  if (!args.parse(argc, argv)) return 1;

  const std::string trace_path = args.get_string("trace");
  const std::string series_path = args.get_string("timeseries");
  const bool telemetry_on = !trace_path.empty() || !series_path.empty();
  const bool per_shard_stats = args.get_bool("per-shard-stats");
  TelemetryConfig tele_cfg;
  tele_cfg.sample_interval = args.get_double("sample-interval");

  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = static_cast<std::size_t>(args.get_int("users"));
  trace_cfg.num_requests = static_cast<std::size_t>(args.get_int("requests"));
  trace_cfg.request_rate = args.get_double("rate");
  trace_cfg.graph.num_pages = static_cast<std::size_t>(args.get_int("pages"));
  trace_cfg.graph.out_degree = 3;
  trace_cfg.graph.exit_probability = 0.25;
  trace_cfg.graph.link_skew = 1.6;
  trace_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const double span = static_cast<double>(trace_cfg.num_requests) /
                      trace_cfg.request_rate;

  const auto shards = static_cast<std::size_t>(args.get_int("shards"));
  const auto threads = static_cast<std::size_t>(args.get_int("threads"));
  const PolicyFactory factory = policy_factory(args.get_string("policy"));

  TraceReplayConfig replay_cfg;
  replay_cfg.bandwidth = args.get_double("bandwidth");
  replay_cfg.cache_capacity = static_cast<std::size_t>(args.get_int("cache"));
  replay_cfg.predictor_kind = TraceReplayConfig::PredictorKind::kMarkov;
  replay_cfg.max_prefetch_per_request =
      static_cast<std::size_t>(args.get_int("prefetch"));
  replay_cfg.seed = trace_cfg.seed;
  replay_cfg.enable_load_sensor = true;  // baselines report peaks too

  for (const std::string& scenario : split_csv(args.get_string("scenarios"))) {
    if (!make_scenario_modulation(scenario, span, std::max<std::size_t>(
                                      shards, 1),
                                  &trace_cfg.modulation)) {
      std::fprintf(stderr, "unknown scenario '%s', skipping\n",
                   scenario.c_str());
      continue;
    }
    const Trace trace = generate_synthetic_trace(trace_cfg);
    Table table({"governor", "peak depth", "peak slowdown", "access time",
                 "p50", "p95", "p99", "hit ratio", "instant hit", "rho",
                 "prefetch jobs", "throttled", "backbone peak", "wall s"});
    table.set_title("scenario: " + scenario +
                    "  (span " + std::to_string(trace.duration()).substr(0, 6) +
                    "s, " + std::to_string(trace.size()) + " requests)");
    table.set_precision(4);
    for (const std::string& gov : split_csv(args.get_string("governors"))) {
      replay_cfg.governor = gov == "none" ? "" : gov;
      const auto t0 = Clock::now();
      ProxySimResult r;
      double backbone_peak = 0.0;
      // Telemetry lives per run: one plane (unsharded) or one plane per
      // shard, exported before the next governor reuses the config.
      std::unique_ptr<TelemetryPlane> plane;
      std::unique_ptr<TelemetryFleet> fleet;
      if (shards <= 1) {
        if (telemetry_on) {
          plane = std::make_unique<TelemetryPlane>(tele_cfg);
          replay_cfg.telemetry = plane.get();
        }
        auto policy = factory();
        r = run_trace_replay(trace, replay_cfg, *policy);
        replay_cfg.telemetry = nullptr;
      } else {
        ShardedReplayConfig sharded_cfg;
        sharded_cfg.stack = replay_cfg;
        sharded_cfg.num_shards = shards;
        sharded_cfg.num_threads = threads;
        sharded_cfg.backbone_bandwidth = args.get_double("backbone-bandwidth");
        sharded_cfg.backbone_latency = args.get_double("backbone-latency");
        if (telemetry_on) {
          fleet = std::make_unique<TelemetryFleet>(tele_cfg, shards);
          sharded_cfg.telemetry = fleet.get();
        }
        const ShardedReplayResult sr =
            run_sharded_replay(trace, sharded_cfg, factory);
        r = sr.merged;
        backbone_peak = sr.backbone.peak_queue_depth;
        if (per_shard_stats) print_per_shard_stats(sr);
      }
      const double secs =
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (!trace_path.empty()) {
        const std::string out = run_output_path(trace_path, scenario, gov);
        const bool ok = plane ? write_chrome_trace(out, *plane)
                              : write_chrome_trace(out, *fleet);
        if (!ok) std::fprintf(stderr, "cannot write trace '%s'\n", out.c_str());
      }
      if (!series_path.empty()) {
        const std::string out = run_output_path(series_path, scenario, gov);
        const bool ok = plane ? write_timeseries_csv(out, *plane)
                              : write_timeseries_csv(out, *fleet);
        if (!ok) std::fprintf(stderr, "cannot write series '%s'\n", out.c_str());
      }
      // "instant hit" = served from cache with zero wait; the overall hit
      // ratio also counts hits that blocked on a live transfer, which is
      // exactly what congestion inflates.
      const double instant_hit =
          r.hit_ratio - (r.requests ? static_cast<double>(r.inflight_hits) /
                                          static_cast<double>(r.requests)
                                    : 0.0);
      table.add_row({gov, r.peak_queue_depth, r.peak_slowdown,
                     r.mean_access_time, r.access_time_p50, r.access_time_p95,
                     r.access_time_p99, r.hit_ratio, instant_hit,
                     r.server_utilization,
                     static_cast<std::int64_t>(r.prefetch_jobs),
                     static_cast<std::int64_t>(r.throttled_prefetches),
                     backbone_peak, secs});
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Reading: the ungoverned row shows what an open-loop prefetcher does\n"
      "to the link when load turns nonstationary; a good governor cuts the\n"
      "peak depth/slowdown at equal or better hit ratio by refusing\n"
      "prefetches exactly while the link is congested.\n");
  return 0;
}
