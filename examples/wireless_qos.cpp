// Wireless / multimedia QoS provisioning — the application the paper's
// conclusion points to. Uses the closed-form inversions (core/inverse) to
// answer the operator's questions for a shared wireless downlink:
//
//   1. What bandwidth does a latency SLO require, with and without
//      prefetching?
//   2. Under a fixed link, how much prefetching does the SLO tolerate?
//   3. How accurate must the predictor be before prefetching helps at all,
//      and before it delivers a target improvement?
//
// Then verifies the provisioning in simulation with the QoS-budgeted
// threshold policy.
#include <cstdio>
#include <iostream>

#include "core/inverse.hpp"
#include "policy/policies.hpp"
#include "sim/proxy_sim.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace specpf;
  ArgParser args("wireless_qos", "QoS provisioning with the closed forms");
  args.add_flag("slo", "0.03", "access-time SLO (seconds)");
  args.add_flag("lambda", "30", "aggregate request rate (req/s)");
  args.add_flag("hprime", "0.3", "cache hit ratio without prefetching");
  args.add_flag("duration", "900", "simulated seconds for the check");
  args.add_flag("users", "6", "clients in the simulated check");
  args.add_flag("cache", "32", "per-client cache capacity (pages)");
  args.add_flag("pages", "100", "site size in the simulated check");
  args.add_flag("utilization-cap", "0.85",
                "QoS policy's utilisation cap (capacity headroom)");
  args.add_flag("seed", "4", "random seed for the simulated check");
  if (!args.parse(argc, argv)) return 1;

  const double slo = args.get_double("slo");

  core::SystemParams params;
  params.request_rate = args.get_double("lambda");
  params.mean_item_size = 1.0;
  params.hit_ratio = args.get_double("hprime");
  params.cache_items = 100.0;

  // --- 1. bandwidth provisioning ---
  const double b_plain = core::min_bandwidth_for_access_time(params, slo);
  const double b_prefetch = core::min_bandwidth_for_access_time(
      params, {0.7, 0.5}, core::InteractionModel::kModelA, slo);
  std::printf("SLO: mean access time <= %.0f ms at lambda=%.0f, h'=%.2f\n\n",
              slo * 1e3, params.request_rate, params.hit_ratio);
  std::printf("bandwidth to meet SLO, cache only:            %6.1f units/s\n",
              b_plain);
  std::printf("bandwidth with prefetching (p=0.7, nF=0.5):   %6.1f units/s\n",
              b_prefetch);
  std::printf("  -> good speculative prefetching substitutes %.0f%% of the "
              "link capacity\n\n",
              100.0 * (1.0 - b_prefetch / b_plain));

  // --- 2. prefetch budget on a fixed link ---
  params.bandwidth = b_plain * 1.1;  // provision 10% above the plain need
  Table budget({"candidate p", "p_th", "SLO prefetch budget n̄(F)",
                "max(np) cap f'/p"});
  budget.set_title("Prefetch budget under the SLO  (b = " +
                   std::to_string(params.bandwidth).substr(0, 6) + ")");
  budget.set_precision(3);
  const double pth = core::threshold(params, core::InteractionModel::kModelA);
  for (double p : {0.2, 0.4, 0.6, 0.8, 0.95}) {
    const double nf = core::max_prefetch_rate_for_access_time(
        params, p, core::InteractionModel::kModelA, slo);
    budget.add_row({p, pth, nf, core::max_candidates(params, p)});
  }
  budget.print(std::cout);

  // --- 3. required predictor quality ---
  Table quality({"target gain (ms)", "required p (Model A)",
                 "required p (Model B)"});
  quality.set_title("Predictor quality needed at n̄(F)=0.5");
  quality.set_precision(3);
  for (double gain_ms : {0.0, 2.0, 5.0, 10.0}) {
    const double pa = core::min_probability_for_gain(
        params, 0.5, core::InteractionModel::kModelA, gain_ms / 1e3);
    const double pb = core::min_probability_for_gain(
        params, 0.5, core::InteractionModel::kModelB, gain_ms / 1e3);
    quality.add_row({gain_ms,
                     pa <= 1.0 ? Cell{pa} : Cell{std::string("unattainable")},
                     pb <= 1.0 ? Cell{pb} : Cell{std::string("unattainable")}});
  }
  quality.print(std::cout);

  // --- 4. verify in simulation with the QoS-budgeted policy ---
  ProxySimConfig cfg;
  cfg.num_users = static_cast<std::size_t>(args.get_int("users"));
  cfg.bandwidth = params.bandwidth;
  cfg.graph.num_pages = static_cast<std::size_t>(args.get_int("pages"));
  cfg.graph.out_degree = 3;
  cfg.graph.exit_probability = 0.2;
  cfg.graph.link_skew = 1.6;
  cfg.session_rate_per_user = 0.9;
  cfg.think_time_mean = 0.35;
  cfg.cache_capacity = static_cast<std::size_t>(args.get_int("cache"));
  cfg.duration = args.get_double("duration");
  cfg.warmup = cfg.duration / 10.0;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  // The policy enforces a utilisation cap (capacity headroom against the
  // tail effects the mean-value model ignores); 0.85 is a common choice.
  NoPrefetchPolicy none;
  QosThresholdPolicy qos(core::InteractionModel::kModelA,
                         args.get_double("utilization-cap"));
  const auto base = run_proxy_sim(cfg, none);
  const auto with_qos = run_proxy_sim(cfg, qos);
  std::printf("simulated check on a session workload (b=%.1f):\n",
              cfg.bandwidth);
  std::printf("  cache only:    t = %.1f ms  (rho %.2f)\n",
              base.mean_access_time * 1e3, base.server_utilization);
  std::printf("  %s: t = %.1f ms  (rho %.2f; SLO %.1f ms: %s)\n",
              with_qos.policy.c_str(), with_qos.mean_access_time * 1e3,
              with_qos.server_utilization, slo * 1e3,
              with_qos.mean_access_time <= slo ? "met" : "MISSED");
  return 0;
}
