// Stability-frontier map: where does speculative prefetching tip the link
// from stable into divergence — empirically, on the full stack?
//
// The paper's analytic answer lives in src/queueing: an M/G/1-PS link with
// offered load ρ ≥ 1 has no stationary regime. This sweep draws the
// *empirical* version of that frontier over a 2-D grid of
//
//   arrival-rate multiplier  ×  prefetch aggressiveness
//
// where the aggressiveness axis is either the open-loop fixed-θ policy's
// threshold or a governor's primary knob (token refill rate / AIMD
// slowdown setpoint / confidence precision bound). Every cell runs the
// full replay with a telemetry plane and an online DivergenceDetector
// (obs/divergence.hpp) attached; the cell's verdict (stable / metastable /
// divergent), time-of-onset, peak smoothed depth, and instant-hit ratio
// come from the detector and the run result, and each cell also carries
// the naive demand-only analytic bound ρ = λ·x̄ for diffing the empirical
// frontier against the M/G/1-PS prediction (prefetch traffic pushes the
// empirical frontier left of it).
//
// With --abort (default), divergent cells terminate at verdict time
// instead of simulating an exploding queue to the horizon — the detector's
// early-abort hook is what makes dense frontier grids affordable.
// --check-abort-speedup reruns the deepest aborted cell with the abort
// disarmed and fails unless aborting saved at least --min-abort-speedup x
// wall-clock.
//
//   ./stability_map                                 # default 4x3 grid
//   ./stability_map --family token --aggressiveness 4000,1000,250
//   ./stability_map --smoke --rates 0.6,2.0 --aggressiveness 0.4,0.02
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "obs/divergence.hpp"
#include "obs/telemetry.hpp"
#include "policy/policies.hpp"
#include "queueing/mg1_ps.hpp"
#include "shard/sharded_sim.hpp"
#include "sim/trace_replay.hpp"
#include "util/argparse.hpp"
#include "util/contract.hpp"
#include "util/table.hpp"
#include "workload/synthetic_trace.hpp"

namespace {

using namespace specpf;
using Clock = std::chrono::steady_clock;

struct GridCell {
  std::string scenario;
  double rate_mult = 1.0;
  std::string label;       ///< policy/governor axis value ("fixed-0.05")
  double aggressiveness = 0.0;  ///< governor's own report (θ for fixed)
  StabilityVerdict verdict = StabilityVerdict::kStable;
  double onset = -1.0;
  std::string onset_signal;
  double peak_depth = 0.0;
  double instant_hit = 0.0;
  double analytic_rho = 0.0;
  bool aborted = false;
  double wall_s = 0.0;
};

std::vector<double> parse_double_list(const std::string& csv,
                                      const char* what) {
  std::vector<double> out;
  for (const std::string& tok : split_csv(csv)) {
    try {
      out.push_back(std::stod(tok));
    } catch (...) {
      std::fprintf(stderr, "ignoring malformed %s '%s'\n", what, tok.c_str());
    }
  }
  return out;
}

/// Trims trailing zeros so grid labels read "fixed-0.05", not
/// "fixed-0.050000".
std::string compact_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("stability_map",
                 "Empirical stability frontier: arrival rate x prefetch "
                 "aggressiveness, classified by the divergence detector");
  args.add_flag("users", "20000", "population size");
  args.add_flag("requests", "150000", "trace length at rate multiplier 1.0");
  args.add_flag("rate", "2000", "base aggregate request rate (req/s)");
  args.add_flag("pages", "400", "site size (pages)");
  args.add_flag("cache", "8", "per-user cache capacity (pages)");
  args.add_flag("bandwidth", "3000", "per-region link bandwidth (pages/s)");
  args.add_flag("prefetch", "4", "max prefetch candidates per request");
  args.add_flag("rates", "0.5,0.7,0.82,1.0",
                "arrival-rate multipliers (trace length scales with the "
                "multiplier so the simulated span stays constant)");
  args.add_flag("family", "fixed",
                "aggressiveness axis: fixed (open-loop fixed-<theta> "
                "policy) | token | aimd | conf (aggressive fixed policy "
                "behind the named governor)");
  args.add_flag("aggressiveness", "0.4,0.35,0.2",
                "comma-separated values for the family's primary knob");
  args.add_flag("base-policy", "fixed-0.02",
                "open-loop policy governed runs use (families != fixed)");
  args.add_flag("scenarios", "stationary,flash",
                "comma-separated scenario names "
                "(stationary|diurnal|flash|hotspot)");
  args.add_flag("shards", "1", "number of regional shards");
  args.add_flag("threads", "1",
                "worker threads for the shard driver (0 = hardware)");
  args.add_flag("backbone-bandwidth", "46000",
                "per-region origin uplink bandwidth (pages/s)");
  args.add_flag("backbone-latency", "0.05",
                "cross-shard latency = epoch lookahead (s)");
  args.add_flag("seed", "2001", "random seed");
  args.add_flag("sample-interval", "0.25",
                "telemetry gauge sampling cadence (sim-seconds)");
  args.add_flag("stream-window", "2048",
                "records per engine batch — also the unsharded detector's "
                "evaluation cadence, so it stays well below the trace");
  args.add_flag("window", "32", "detector trend window (rows)");
  args.add_flag("growth-run", "6",
                "detector sustained-growth run length (steps)");
  args.add_flag("slope-threshold", "0.05",
                "detector Theil-Sen slope threshold (units/s)");
  args.add_flag("depth-level", "8",
                "detector elevated-plateau depth threshold (jobs)");
  args.add_flag("abort", "true",
                "terminate divergent cells at verdict time instead of "
                "simulating the exploding queue to the horizon");
  args.add_flag("out", "BENCH_stability.json",
                "benchmark-JSON output path (empty = skip)");
  args.add_flag("csv", "",
                "frontier heatmap CSV output path (empty = skip)");
  args.add_flag("smoke", "false",
                "CI gate: fail unless the grid shows >=1 stable and >=1 "
                "divergent cell, with >=1 early abort when --abort is on");
  args.add_flag("check-abort-speedup", "false",
                "rerun the deepest aborted cell with the abort disarmed "
                "and fail unless aborting saved >= --min-abort-speedup x "
                "wall-clock");
  args.add_flag("min-abort-speedup", "2.0",
                "wall-clock ratio --check-abort-speedup requires");
  if (!args.parse(argc, argv)) return 1;

  const std::vector<double> rate_mults =
      parse_double_list(args.get_string("rates"), "rate multiplier");
  const std::vector<double> aggr_values =
      parse_double_list(args.get_string("aggressiveness"), "aggressiveness");
  const std::string family = args.get_string("family");
  if (rate_mults.empty() || aggr_values.empty()) {
    std::fprintf(stderr, "empty sweep axis\n");
    return 1;
  }
  if (family != "fixed" && family != "token" && family != "aimd" &&
      family != "conf") {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    return 1;
  }

  const auto shards = static_cast<std::size_t>(args.get_int("shards"));
  const auto threads = static_cast<std::size_t>(args.get_int("threads"));
  const bool abort_on = args.get_bool("abort");
  const double base_rate = args.get_double("rate");
  const double bandwidth = args.get_double("bandwidth");
  const auto base_requests =
      static_cast<std::size_t>(args.get_int("requests"));

  TelemetryConfig tele_cfg;
  tele_cfg.sample_interval = args.get_double("sample-interval");

  DivergenceConfig det_cfg;
  det_cfg.window = static_cast<std::size_t>(args.get_int("window"));
  det_cfg.min_growth_run =
      static_cast<std::size_t>(args.get_int("growth-run"));
  det_cfg.slope_threshold = args.get_double("slope-threshold");
  det_cfg.depth_level = args.get_double("depth-level");

  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = static_cast<std::size_t>(args.get_int("users"));
  trace_cfg.graph.num_pages = static_cast<std::size_t>(args.get_int("pages"));
  trace_cfg.graph.out_degree = 3;
  trace_cfg.graph.exit_probability = 0.25;
  trace_cfg.graph.link_skew = 1.6;
  trace_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  // Span at multiplier 1 — held constant across the rate axis by scaling
  // the trace length with the multiplier.
  const double span = static_cast<double>(base_requests) / base_rate;

  TraceReplayConfig replay_base;
  replay_base.bandwidth = bandwidth;
  replay_base.cache_capacity =
      static_cast<std::size_t>(args.get_int("cache"));
  replay_base.predictor_kind = TraceReplayConfig::PredictorKind::kMarkov;
  replay_base.max_prefetch_per_request =
      static_cast<std::size_t>(args.get_int("prefetch"));
  replay_base.seed = trace_cfg.seed;
  replay_base.enable_load_sensor = true;
  replay_base.stream_window =
      static_cast<std::size_t>(args.get_int("stream-window"));

  // The detector ignores the replay's warmup prefix: empty caches and an
  // untrained predictor make the opening seconds look like sustained queue
  // growth in every cell, which is a cold-start artifact, not divergence.
  det_cfg.settle_time = replay_base.warmup_fraction * span;
  det_cfg.validate();

  // One cell: fresh trace slice config, fresh plane(s), fresh detector.
  // Returns the run's wall-clock through cell.wall_s.
  const auto run_cell = [&](const std::string& scenario, double mult,
                            double aggr, bool allow_abort) {
    GridCell cell;
    cell.scenario = scenario;
    cell.rate_mult = mult;

    SyntheticTraceConfig cfg = trace_cfg;
    cfg.request_rate = base_rate * mult;
    cfg.num_requests = static_cast<std::size_t>(
        static_cast<double>(base_requests) * mult);
    const bool known = make_scenario_modulation(
        scenario, span, std::max<std::size_t>(shards, 1), &cfg.modulation);
    SPECPF_EXPECTS(known);

    TraceReplayConfig replay_cfg = replay_base;
    std::string policy_name;
    if (family == "fixed") {
      policy_name = "fixed-" + compact_number(aggr);
      cell.aggressiveness = aggr;
    } else {
      policy_name = args.get_string("base-policy");
      replay_cfg.governor = family + "-" + compact_number(aggr);
      // Read the knob back through the governor's own introspection so the
      // annotation cannot drift from what the run actually constructed.
      const auto probe = make_governor_by_name(replay_cfg.governor);
      SPECPF_EXPECTS(probe != nullptr);
      cell.aggressiveness = probe->aggressiveness();
    }
    cell.label = family == "fixed" ? policy_name : replay_cfg.governor;

    // Demand-only analytic bound: λ·x̄ with every request a miss and no
    // prefetch traffic. The empirical frontier sits left of ρ = 1 exactly
    // by the speculative load the policy adds (minus what caching absorbs).
    cell.analytic_rho = MG1PS(cfg.request_rate, 1.0 / bandwidth).utilization();

    const Trace trace = generate_synthetic_trace(cfg);
    DivergenceDetector detector;
    detector.configure(det_cfg);

    const auto t0 = Clock::now();
    ProxySimResult r;
    if (shards <= 1) {
      TelemetryPlane plane(tele_cfg);
      replay_cfg.telemetry = &plane;
      replay_cfg.divergence = &detector;
      replay_cfg.abort_on_divergence = allow_abort;
      const auto policy = make_policy_by_name(policy_name);
      SPECPF_EXPECTS(policy != nullptr);
      r = run_trace_replay(trace, replay_cfg, *policy);
    } else {
      ShardedReplayConfig sharded_cfg;
      sharded_cfg.stack = std::move(replay_cfg);
      sharded_cfg.num_shards = shards;
      sharded_cfg.num_threads = threads;
      sharded_cfg.backbone_bandwidth = args.get_double("backbone-bandwidth");
      sharded_cfg.backbone_latency = args.get_double("backbone-latency");
      TelemetryFleet fleet(tele_cfg, shards);
      sharded_cfg.telemetry = &fleet;
      sharded_cfg.divergence = &detector;
      sharded_cfg.abort_on_divergence = allow_abort;
      r = run_sharded_replay(trace, sharded_cfg,
                             [&policy_name] {
                               return make_policy_by_name(policy_name);
                             })
              .merged;
    }
    cell.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

    cell.verdict = detector.verdict();
    cell.onset = detector.onset_time();
    cell.onset_signal = detector.onset_signal();
    for (std::size_t i = 0; i < detector.num_signals(); ++i) {
      cell.peak_depth = std::max(cell.peak_depth, detector.peak(i));
    }
    cell.instant_hit =
        r.hit_ratio - (r.requests ? static_cast<double>(r.inflight_hits) /
                                        static_cast<double>(r.requests)
                                  : 0.0);
    // A run that aborted handled strictly fewer requests than its trace
    // scheduled (measurement covers everything past the warmup boundary).
    const auto warmup = static_cast<std::uint64_t>(
        replay_base.warmup_fraction * static_cast<double>(trace.size()));
    cell.aborted = allow_abort &&
                   cell.verdict == StabilityVerdict::kDivergent &&
                   r.requests < trace.size() - warmup;
    return cell;
  };

  std::vector<GridCell> cells;
  for (const std::string& scenario :
       split_csv(args.get_string("scenarios"))) {
    ArrivalModulation probe;
    if (!make_scenario_modulation(scenario, span,
                                  std::max<std::size_t>(shards, 1),
                                  &probe)) {
      std::fprintf(stderr, "unknown scenario '%s', skipping\n",
                   scenario.c_str());
      continue;
    }
    Table table({"rate x", "cell", "verdict", "onset s", "peak depth",
                 "instant hit", "analytic rho", "aborted", "wall s"});
    table.set_title("scenario: " + scenario + "  (family " + family +
                    ", span " + compact_number(span) + "s)");
    table.set_precision(4);
    for (const double mult : rate_mults) {
      for (const double aggr : aggr_values) {
        const GridCell cell = run_cell(scenario, mult, aggr, abort_on);
        table.add_row({cell.rate_mult, cell.label,
                       std::string(verdict_name(cell.verdict)), cell.onset,
                       cell.peak_depth, cell.instant_hit, cell.analytic_rho,
                       std::string(cell.aborted ? "yes" : "no"),
                       cell.wall_s});
        cells.push_back(cell);
      }
    }
    table.print(std::cout);
    std::printf("\n");
  }
  if (cells.empty()) {
    std::fprintf(stderr, "no cells ran\n");
    return 1;
  }

  std::size_t stable_cells = 0;
  std::size_t metastable_cells = 0;
  std::size_t divergent_cells = 0;
  std::size_t aborted_cells = 0;
  for (const GridCell& c : cells) {
    stable_cells += c.verdict == StabilityVerdict::kStable;
    metastable_cells += c.verdict == StabilityVerdict::kMetastable;
    divergent_cells += c.verdict == StabilityVerdict::kDivergent;
    aborted_cells += c.aborted;
  }
  std::printf("%zu cells: %zu stable, %zu metastable, %zu divergent "
              "(%zu aborted early)\n",
              cells.size(), stable_cells, metastable_cells, divergent_cells,
              aborted_cells);

  // ---- Heatmap CSV ---------------------------------------------------
  const std::string csv_path = args.get_string("csv");
  if (!csv_path.empty()) {
    std::FILE* f = std::fopen(csv_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write '%s'\n", csv_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "scenario,rate_mult,cell,aggressiveness,verdict,onset_s,"
                 "onset_signal,peak_depth,instant_hit,analytic_rho,aborted,"
                 "wall_s\n");
    for (const GridCell& c : cells) {
      std::fprintf(f, "%s,%.9g,%s,%.9g,%s,%.9g,%s,%.9g,%.9g,%.9g,%d,%.9g\n",
                   c.scenario.c_str(), c.rate_mult, c.label.c_str(),
                   c.aggressiveness, verdict_name(c.verdict), c.onset,
                   c.onset_signal.c_str(), c.peak_depth, c.instant_hit,
                   c.analytic_rho, c.aborted ? 1 : 0, c.wall_s);
    }
    std::fclose(f);
    std::printf("wrote %s\n", csv_path.c_str());
  }

  // ---- Benchmark JSON ------------------------------------------------
  const std::string out_path = args.get_string("out");
  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"schema\": 1,\n  \"benchmarks\": [\n");
    bool first = true;
    const auto emit = [&](const std::string& name, double value,
                          const char* unit) {
      std::fprintf(f, "%s    {\"name\": \"%s\", \"value\": %.6g, "
                      "\"unit\": \"%s\"}",
                   first ? "" : ",\n", name.c_str(), value, unit);
      first = false;
    };
    for (const GridCell& c : cells) {
      const std::string base = "stability/" + c.scenario + "/rate-" +
                               compact_number(c.rate_mult) + "/" + c.label;
      emit(base + "/verdict", static_cast<double>(c.verdict), "verdict");
      emit(base + "/onset", c.onset, "s");
      emit(base + "/peak_depth", c.peak_depth, "jobs");
      emit(base + "/instant_hit", c.instant_hit, "ratio");
      emit(base + "/analytic_rho", c.analytic_rho, "rho");
      emit(base + "/aborted", c.aborted ? 1.0 : 0.0, "bool");
      emit(base + "/wall_s", c.wall_s, "s");
    }
    emit("stability/cells", static_cast<double>(cells.size()), "count");
    emit("stability/stable_cells", static_cast<double>(stable_cells),
         "count");
    emit("stability/metastable_cells",
         static_cast<double>(metastable_cells), "count");
    emit("stability/divergent_cells", static_cast<double>(divergent_cells),
         "count");
    emit("stability/aborted_cells", static_cast<double>(aborted_cells),
         "count");
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  // ---- Early-abort wall-clock gate -----------------------------------
  if (args.get_bool("check-abort-speedup")) {
    const GridCell* deepest = nullptr;
    for (const GridCell& c : cells) {
      if (!c.aborted) continue;
      if (deepest == nullptr || c.analytic_rho > deepest->analytic_rho) {
        deepest = &c;
      }
    }
    if (deepest == nullptr) {
      std::fprintf(stderr,
                   "--check-abort-speedup: no cell aborted (is --abort "
                   "off, or the grid entirely stable?)\n");
      return 1;
    }
    // The stored knob round-trips through compact_number into the same
    // policy/governor name the original cell constructed.
    const GridCell rerun = run_cell(deepest->scenario, deepest->rate_mult,
                                deepest->aggressiveness,
                                /*allow_abort=*/false);
    const double ratio =
        deepest->wall_s > 0.0 ? rerun.wall_s / deepest->wall_s : 0.0;
    std::printf("abort speedup on %s rate-%s %s: %.3gs -> %.3gs (%.2fx)\n",
                deepest->scenario.c_str(),
                compact_number(deepest->rate_mult).c_str(),
                deepest->label.c_str(), rerun.wall_s, deepest->wall_s,
                ratio);
    const double need = args.get_double("min-abort-speedup");
    if (ratio < need) {
      std::fprintf(stderr, "abort speedup %.2fx below the %.2fx gate\n",
                   ratio, need);
      return 1;
    }
  }

  // ---- Smoke gate ----------------------------------------------------
  if (args.get_bool("smoke")) {
    const bool regimes_ok = stable_cells >= 1 && divergent_cells >= 1;
    const bool abort_ok = !abort_on || aborted_cells >= 1;
    if (!regimes_ok || !abort_ok) {
      std::fprintf(stderr,
                   "smoke gate failed: need >=1 stable and >=1 divergent "
                   "cell%s (got %zu/%zu/%zu stable/meta/divergent, %zu "
                   "aborted)\n",
                   abort_on ? " plus >=1 early abort" : "", stable_cells,
                   metastable_cells, divergent_cells, aborted_cells);
      return 1;
    }
    std::printf("smoke gate OK\n");
  }
  return 0;
}
